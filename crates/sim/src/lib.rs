//! # ggpu-sim — the whole-GPU cycle-level simulator
//!
//! Glues the Genomics-GPU substrates into a complete device:
//!
//! * [`Gpu`] — SM cluster (`ggpu-sm`), request/reply interconnects
//!   (`ggpu-icnt`), per-partition L2 slices and DRAM channels (`ggpu-mem`),
//!   a CTA dispatcher, and a CUDA-Dynamic-Parallelism runtime (device-side
//!   launches become child grids with their own launch overhead, and
//!   `cudaDeviceSynchronize` parks the parent until its children drain).
//! * Host API — `malloc` / `memcpy_h2d` / `memcpy_d2h` / `launch` /
//!   `synchronize`, with a PCIe cost model whose transaction counts and
//!   cycles reproduce the paper's Figure 4.
//! * [`GpuConfig`] — the full Table I / Table II configuration space with
//!   the RTX 3070 baseline, plus builders for the paper's sweeps (cache
//!   sizes, CTA scaling, schedulers, memory controllers, topologies).
//! * [`RunStats`] — every counter the paper's figures need, in one place.
//!
//! ## Example
//!
//! ```
//! use ggpu_isa::{KernelBuilder, LaunchDims, Operand, Program, Space, Width};
//! use ggpu_sim::{Gpu, GpuConfig};
//!
//! // Kernel: out[tid] = tid * 2
//! let mut b = KernelBuilder::new("double");
//! let tid = b.global_tid();
//! let v = b.reg();
//! b.imul(v, tid, Operand::imm(2));
//! let base = b.reg();
//! b.ld_param(base, 0);
//! let a = b.reg();
//! b.imul(a, tid, Operand::imm(8));
//! b.iadd(a, a, Operand::reg(base));
//! b.st(Space::Global, Width::B64, Operand::reg(v), a, 0);
//! b.exit();
//! let mut program = Program::new();
//! let k = program.add(b.finish());
//!
//! let mut gpu = Gpu::new(program, GpuConfig::test_small());
//! let out = gpu.malloc(64 * 8);
//! gpu.run_kernel(k, LaunchDims::linear(2, 32), &[out.0]);
//! assert_eq!(gpu.memory().read_u64(out.offset(5 * 8)), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod config;
mod device;
mod error;
pub mod json;
mod memory;
mod node;
mod profile;
mod stats;
mod trace;

pub use config::{FaultPlan, GpuConfig, PcieConfig};
pub use device::{Gpu, LaunchOptions, StreamId};
pub use error::{DeadlockReport, DeviceFault, LaunchProblem, SimError};
pub use memory::{DeviceMemory, DevicePtr};
pub use node::{grid_device, shard_ranges, FabricConfig, GpuNode, NodeConfig, NodeStats};
pub use profile::{
    run_stats_json, IntervalSample, KernelPcProfile, KernelRecord, PartitionUnit, PcProfile,
    PcProfileRow, ProfileReport, SmUnit, UnitProfile,
};
pub use stats::{HostStats, RunStats};
pub use trace::{
    chrome_trace_events, chrome_trace_json, CopyDir, TraceBuffer, TraceEvent, TraceEventKind,
    TraceSink,
};

// Re-export the fault vocabulary so harnesses matching on errors don't need
// direct `ggpu-isa` / `ggpu-sm` dependencies.
pub use ggpu_isa::FaultKind;
pub use ggpu_sm::{WarpReport, WarpWait};

// Re-export the counter vocabulary the attribution profiler exposes, so
// harnesses can read [`ProfileReport`] without substrate dependencies.
pub use ggpu_mem::{CacheStats, DramStats};

// Re-export the interconnect vocabulary so node-level fabrics
// ([`FabricConfig`]) can be configured without a direct `ggpu-icnt`
// dependency.
pub use ggpu_icnt::{IcntConfig, IcntStats, Topology};
pub use ggpu_sm::{PcCounters, PcTable, SmStats, StallBreakdown, StallReason};

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_isa::{AtomOp, CmpOp, KernelBuilder, LaunchDims, Operand, Program, Space, Width};

    fn double_program() -> (Program, ggpu_isa::KernelId) {
        let mut b = KernelBuilder::new("double");
        let tid = b.global_tid();
        let v = b.reg();
        b.imul(v, tid, Operand::imm(2));
        let base = b.reg();
        b.ld_param(base, 0);
        let a = b.reg();
        b.imul(a, tid, Operand::imm(8));
        b.iadd(a, a, Operand::reg(base));
        b.st(Space::Global, Width::B64, Operand::reg(v), a, 0);
        b.exit();
        let mut p = Program::new();
        let k = p.add(b.finish());
        (p, k)
    }

    #[test]
    fn end_to_end_kernel_execution() {
        let (p, k) = double_program();
        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let out = gpu.malloc(256 * 8);
        let cycles = gpu.run_kernel(k, LaunchDims::linear(8, 32), &[out.0]);
        assert!(cycles > 0);
        for tid in 0..256u64 {
            assert_eq!(
                gpu.memory().read_u64(out.offset(tid * 8)),
                tid * 2,
                "tid {tid}"
            );
        }
        let s = gpu.stats();
        assert_eq!(s.host.kernel_launches, 1);
        assert_eq!(s.sm.ctas_completed, 8);
        assert!(s.sm.issued > 0);
        assert!(s.ipc() > 0.0);
    }

    #[test]
    fn grids_serialize_on_default_stream() {
        // Non-atomic increment: correct only if grids run one at a time.
        let mut b = KernelBuilder::new("inc");
        let base = b.reg();
        b.ld_param(base, 0);
        let v = b.reg();
        b.ld(Space::Global, Width::B64, v, base, 0);
        b.iadd(v, v, Operand::imm(1));
        b.st(Space::Global, Width::B64, Operand::reg(v), base, 0);
        b.exit();
        let mut p = Program::new();
        let k = p.add(b.finish());
        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let out = gpu.malloc(8);
        for _ in 0..5 {
            gpu.launch(k, LaunchDims::linear(1, 1), &[out.0]);
        }
        gpu.synchronize();
        assert_eq!(gpu.memory().read_u64(out), 5);
        assert_eq!(gpu.stats().host.kernel_launches, 5);
    }

    #[test]
    fn memcpy_accounting_matches_fig4_model() {
        let (p, _k) = double_program();
        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let buf = gpu.malloc(4096);
        gpu.memcpy_h2d(buf, &vec![7u8; 4096]);
        let back = gpu.memcpy_d2h(buf, 4096);
        assert_eq!(back, vec![7u8; 4096]);
        let s = gpu.stats();
        assert_eq!(s.host.pci_count, 2);
        assert_eq!(s.host.h2d_bytes, 4096);
        assert_eq!(s.host.d2h_bytes, 4096);
        assert!(s.host.pci_cycles >= 2 * gpu.config().pcie.latency);
    }

    #[test]
    fn atomics_across_many_ctas() {
        let mut b = KernelBuilder::new("count");
        let base = b.reg();
        b.ld_param(base, 0);
        let old = b.reg();
        b.atom(
            AtomOp::Add,
            Space::Global,
            old,
            base,
            Operand::imm(1),
            Operand::imm(0),
        );
        b.exit();
        let mut p = Program::new();
        let k = p.add(b.finish());
        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let out = gpu.malloc(8);
        gpu.run_kernel(k, LaunchDims::linear(16, 64), &[out.0]);
        assert_eq!(gpu.memory().read_u64(out), 16 * 64);
    }

    #[test]
    fn cdp_parent_child_roundtrip() {
        let mut p = Program::new();

        let mut pb = KernelBuilder::new("parent");
        let tid = pb.global_tid();
        let z = pb.cmp_s(CmpOp::Eq, Operand::reg(tid), Operand::imm(0));
        pb.if_then(z, |b| {
            let data = b.reg();
            b.ld_param(data, 0);
            let pblock = b.reg();
            b.ld_param(pblock, 1);
            b.st(Space::Global, Width::B64, Operand::reg(data), pblock, 0);
            b.launch(
                1,
                Operand::imm(2),
                Operand::imm(32),
                Operand::reg(pblock),
                1,
            );
            b.dsync();
            let flag = b.reg();
            b.ld_param(flag, 2);
            let v = b.reg();
            b.ld(Space::Global, Width::B64, v, data, 0);
            b.st(Space::Global, Width::B64, Operand::reg(v), flag, 0);
        });
        pb.exit();
        p.add(pb.finish());

        let mut cb = KernelBuilder::new("child");
        let ctid = cb.global_tid();
        let base = cb.reg();
        cb.ld_param(base, 0);
        let a = cb.reg();
        cb.imul(a, ctid, Operand::imm(8));
        cb.iadd(a, a, Operand::reg(base));
        let v = cb.reg();
        cb.ld(Space::Global, Width::B64, v, a, 0);
        cb.imul(v, v, Operand::imm(2));
        cb.st(Space::Global, Width::B64, Operand::reg(v), a, 0);
        cb.exit();
        p.add(cb.finish());

        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let data = gpu.malloc(64 * 8);
        let pblock = gpu.malloc(8);
        let flag = gpu.malloc(8);
        for i in 0..64u64 {
            gpu.memory_mut().write_u64(data.offset(i * 8), i + 1);
        }
        gpu.run_kernel(
            ggpu_isa::KernelId(0),
            LaunchDims::linear(1, 32),
            &[data.0, pblock.0, flag.0],
        );
        for i in 0..64u64 {
            assert_eq!(
                gpu.memory().read_u64(data.offset(i * 8)),
                (i + 1) * 2,
                "i={i}"
            );
        }
        // Parent observed the child's doubled value after dsync.
        assert_eq!(gpu.memory().read_u64(flag), 2);
        assert_eq!(gpu.stats().sm.device_launches, 1);
    }

    #[test]
    fn stats_reset() {
        let (p, k) = double_program();
        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let out = gpu.malloc(8 * 64);
        gpu.run_kernel(k, LaunchDims::linear(2, 32), &[out.0]);
        assert!(gpu.stats().sm.issued > 0);
        gpu.reset_stats();
        let s = gpu.stats();
        assert_eq!(s.sm.issued, 0);
        assert_eq!(s.host.kernel_launches, 0);
        assert_eq!(s.l1.accesses(), 0);
    }

    #[test]
    fn attribution_profile_telescopes_to_run_stats() {
        let (p, k) = double_program();
        let mut gpu = Gpu::new(p, GpuConfig::test_small().with_attribution(true));
        assert!(gpu.profiling_enabled());
        let out = gpu.malloc(256 * 8);
        gpu.run_kernel(k, LaunchDims::linear(8, 32), &[out.0]);
        let s = gpu.stats();

        let pc = gpu.pc_profile().expect("attribution on");
        assert_eq!(pc.total(|c| c.issues), s.sm.issued);
        assert_eq!(pc.total(|c| c.lanes), s.sm.thread_instrs);
        assert_eq!(pc.total(|c| c.offchip_txns), s.sm.offchip_txns);
        assert_eq!(pc.total(|c| c.l1_accesses), s.l1.accesses());
        assert_eq!(pc.total(|c| c.l1_hits), s.l1.hits());
        for reason in StallReason::ALL {
            assert_eq!(
                pc.total(|c| c.stalls.get(reason)) + pc.unattributed.get(reason),
                s.sm.stalls.get(reason),
                "stall {reason:?} must telescope"
            );
        }

        let units = gpu.unit_profile();
        let issued: u64 = units.sms.iter().map(|u| u.stats.issued).sum();
        assert_eq!(issued, s.sm.issued);
        let l1: u64 = units.sms.iter().map(|u| u.l1.accesses()).sum();
        assert_eq!(l1, s.l1.accesses());
        let dram: u64 = units.partitions.iter().map(|p| p.dram.requests).sum();
        assert_eq!(dram, s.dram.requests);
        let banks: u64 = units
            .partitions
            .iter()
            .flat_map(|p| p.banks.iter())
            .map(|&(req, _)| req)
            .sum();
        assert_eq!(banks, s.dram.requests);
        let req: u64 = units.sms.iter().map(|u| u.req_injected).sum();
        assert_eq!(req, s.icnt_req.packets);
        let rep: u64 = units.partitions.iter().map(|p| p.rep_injected).sum();
        assert_eq!(rep, s.icnt_rep.packets);

        // take_profile carries both axes; reset clears the PC table.
        let report = gpu.take_profile();
        assert!(report.pc.is_some());
        assert_eq!(report.units.sms.len(), gpu.config().n_sms);
        gpu.reset_stats();
        let pc = gpu.pc_profile().expect("table survives reset, zeroed");
        assert_eq!(pc.total(|c| c.issues), 0);
    }

    #[test]
    fn attribution_does_not_change_stats() {
        let run = |attribution: bool| {
            let (p, k) = double_program();
            let cfg = GpuConfig::test_small().with_attribution(attribution);
            let mut gpu = Gpu::new(p, cfg);
            let out = gpu.malloc(256 * 8);
            gpu.run_kernel(k, LaunchDims::linear(8, 32), &[out.0]);
            gpu.stats()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn perfect_memory_speeds_up_memory_bound_kernel() {
        let build = |perfect: bool| {
            let mut b = KernelBuilder::new("strider");
            let tid = b.global_tid();
            let base = b.reg();
            b.ld_param(base, 0);
            let acc = b.reg();
            b.mov(acc, Operand::imm(0));
            b.for_range(Operand::imm(0), Operand::imm(16), 1, |b, i| {
                let a = b.reg();
                b.imul(a, i, Operand::imm(512));
                b.iadd(a, a, Operand::reg(tid));
                b.imul(a, a, Operand::imm(128));
                b.iadd(a, a, Operand::reg(base));
                let v = b.reg();
                b.ld(Space::Global, Width::B64, v, a, 0);
                b.iadd(acc, acc, Operand::reg(v));
            });
            let outp = b.reg();
            b.ld_param(outp, 1);
            let oa = b.reg();
            b.imul(oa, tid, Operand::imm(8));
            b.iadd(oa, oa, Operand::reg(outp));
            b.st(Space::Global, Width::B64, Operand::reg(acc), oa, 0);
            b.exit();
            let mut p = Program::new();
            let k = p.add(b.finish());
            let mut cfg = GpuConfig::test_small();
            cfg.sm.perfect_memory = perfect;
            let mut gpu = Gpu::new(p, cfg);
            let data = gpu.malloc(16 * 512 * 128 + 4096);
            let out = gpu.malloc(128 * 8);
            gpu.run_kernel(k, LaunchDims::linear(4, 32), &[data.0, out.0])
        };
        let normal = build(false);
        let perfect = build(true);
        assert!(
            perfect < normal,
            "perfect memory ({perfect}) must beat real memory ({normal})"
        );
    }

    #[test]
    fn dram_and_l2_see_traffic() {
        let (p, k) = double_program();
        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let out = gpu.malloc(1024 * 8);
        gpu.run_kernel(k, LaunchDims::linear(32, 32), &[out.0]);
        let s = gpu.stats();
        assert!(s.l2.accesses() > 0, "L2 saw no traffic");
        assert!(s.dram.requests > 0, "DRAM saw no traffic");
        assert!(s.icnt_req.packets > 0);
        assert!(s.dram.efficiency() > 0.0);
    }

    #[test]
    fn kernel_launch_overhead_counts_functional_done() {
        let (p, k) = double_program();
        let mut cfg = GpuConfig::test_small();
        cfg.kernel_launch_overhead = 2_000;
        let mut gpu = Gpu::new(p, cfg);
        let out = gpu.malloc(64 * 8);
        gpu.run_kernel(k, LaunchDims::linear(1, 32), &[out.0]);
        let s = gpu.stats();
        let fd = s.sm.stalls.get(ggpu_sm::StallReason::FunctionalDone);
        assert!(
            fd > 1000,
            "launch overhead should appear as functional-done stalls, got {fd}"
        );
    }

    #[test]
    fn multi_cta_grid_spreads_across_sms() {
        let (p, k) = double_program();
        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let out = gpu.malloc(4096 * 8);
        gpu.run_kernel(k, LaunchDims::linear(128, 32), &[out.0]);
        for tid in (0..4096u64).step_by(997) {
            assert_eq!(gpu.memory().read_u64(out.offset(tid * 8)), tid * 2);
        }
        assert_eq!(gpu.stats().sm.ctas_completed, 128);
    }
}
