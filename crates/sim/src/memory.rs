//! Functional device memory: a flat byte image with a bump allocator.

use ggpu_isa::{AtomOp, FaultKind, Width};
use ggpu_sm::GlobalMem;

/// A typed device pointer returned by [`DeviceMemory::alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// Byte offset arithmetic.
    pub fn offset(self, bytes: u64) -> DevicePtr {
        DevicePtr(self.0 + bytes)
    }
}

impl std::fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// Flat functional memory image. Reads outside the written region return
/// zero; writes grow the image (capped only by host memory).
///
/// The functional `read`/`write` paths stay permissive (timing models probe
/// them freely); architectural bounds checking happens separately through
/// [`GlobalMem::check`], which the SM consults per lane before any access
/// and turns violations into guest faults.
#[derive(Debug, Default)]
pub struct DeviceMemory {
    data: Vec<u8>,
    cursor: u64,
    /// Injected unmapped range (`[start, end)`); accesses overlapping it
    /// fault as illegal addresses.
    poison: Option<(u64, u64)>,
    /// Allocations performed so far (never decremented; arena recycling
    /// shows up as this staying flat while work continues).
    alloc_count: u64,
}

/// Allocation alignment for [`DeviceMemory::alloc`].
const ALLOC_ALIGN: u64 = 256;
/// Address zero is reserved so null pointers fault visibly (read as zero).
const BASE: u64 = 4096;

impl DeviceMemory {
    /// Fresh empty memory.
    pub fn new() -> Self {
        DeviceMemory {
            data: Vec::new(),
            cursor: BASE,
            poison: None,
            alloc_count: 0,
        }
    }

    /// Mark `[start, end)` as unmapped for fault injection (`None` clears).
    pub fn set_poison(&mut self, range: Option<(u64, u64)>) {
        self.poison = range;
    }

    /// One past the highest allocated address (the allocation frontier).
    pub fn frontier(&self) -> u64 {
        self.cursor
    }

    /// Allocate `bytes` of device memory (256-byte aligned).
    pub fn alloc(&mut self, bytes: u64) -> DevicePtr {
        let addr = self.cursor;
        self.cursor = (addr + bytes).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let end = (addr + bytes) as usize;
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.alloc_count += 1;
        DevicePtr(addr)
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.cursor - BASE
    }

    /// Total [`DeviceMemory::alloc`] calls so far. Monotone: recycling an
    /// arena does not allocate, so a steady-state harness sees this stay
    /// flat while throughput continues.
    pub fn alloc_count(&self) -> u64 {
        self.alloc_count
    }

    /// Copy a host slice into device memory.
    pub fn write_slice(&mut self, ptr: DevicePtr, bytes: &[u8]) {
        let start = ptr.0 as usize;
        let end = start + bytes.len();
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        self.data[start..end].copy_from_slice(bytes);
    }

    /// Copy device memory out to the host.
    pub fn read_slice(&self, ptr: DevicePtr, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        let start = ptr.0 as usize;
        for (i, b) in out.iter_mut().enumerate() {
            *b = self.data.get(start + i).copied().unwrap_or(0);
        }
        out
    }

    /// Read one u64 (convenience for tests and harnesses).
    pub fn read_u64(&self, ptr: DevicePtr) -> u64 {
        let b = self.read_slice(ptr, 8);
        u64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    /// Write one u64.
    pub fn write_u64(&mut self, ptr: DevicePtr, v: u64) {
        self.write_slice(ptr, &v.to_le_bytes());
    }
}

impl GlobalMem for DeviceMemory {
    fn check(&self, addr: u64, width: Width, _store: bool) -> Option<FaultKind> {
        let w = width.bytes();
        if !addr.is_multiple_of(w) {
            return Some(FaultKind::MisalignedAccess);
        }
        let end = match addr.checked_add(w) {
            Some(e) => e,
            None => return Some(FaultKind::IllegalAddress),
        };
        if addr < BASE || end > self.cursor {
            return Some(FaultKind::IllegalAddress);
        }
        if let Some((lo, hi)) = self.poison {
            if addr < hi && end > lo {
                return Some(FaultKind::IllegalAddress);
            }
        }
        None
    }

    fn read(&self, addr: u64, width: Width) -> u64 {
        let mut v = 0u64;
        for i in 0..width.bytes() {
            let b = self.data.get((addr + i) as usize).copied().unwrap_or(0);
            v |= (b as u64) << (8 * i);
        }
        v
    }

    fn write(&mut self, addr: u64, width: Width, value: u64) {
        let end = (addr + width.bytes()) as usize;
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
        for i in 0..width.bytes() {
            self.data[(addr + i) as usize] = (value >> (8 * i)) as u8;
        }
    }

    fn atom(&mut self, op: AtomOp, addr: u64, src: u64, cas: u64) -> u64 {
        let old = GlobalMem::read(self, addr, Width::B64);
        let (new, o) = op.apply(old, src, cas);
        GlobalMem::write(self, addr, Width::B64, new);
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = DeviceMemory::new();
        let a = m.alloc(100);
        let b = m.alloc(100);
        assert_eq!(a.0 % ALLOC_ALIGN, 0);
        assert_eq!(b.0 % ALLOC_ALIGN, 0);
        assert!(b.0 >= a.0 + 100);
        assert!(m.allocated() >= 200);
    }

    #[test]
    fn slice_roundtrip() {
        let mut m = DeviceMemory::new();
        let p = m.alloc(16);
        m.write_slice(p, &[1, 2, 3, 4]);
        assert_eq!(m.read_slice(p, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.read_slice(p.offset(2), 2), vec![3, 4]);
    }

    #[test]
    fn u64_roundtrip_and_widths() {
        let mut m = DeviceMemory::new();
        let p = m.alloc(8);
        m.write_u64(p, 0x1122334455667788);
        assert_eq!(m.read_u64(p), 0x1122334455667788);
        assert_eq!(GlobalMem::read(&m, p.0, Width::B8), 0x88);
        assert_eq!(GlobalMem::read(&m, p.0 + 1, Width::B16), 0x6677);
        assert_eq!(GlobalMem::read(&m, p.0, Width::B32), 0x55667788);
    }

    #[test]
    fn unwritten_reads_zero() {
        let m = DeviceMemory::new();
        assert_eq!(GlobalMem::read(&m, 1 << 40, Width::B64), 0);
    }

    #[test]
    fn atomics_apply() {
        let mut m = DeviceMemory::new();
        let p = m.alloc(8);
        m.write_u64(p, 10);
        let old = m.atom(AtomOp::Add, p.0, 5, 0);
        assert_eq!(old, 10);
        assert_eq!(m.read_u64(p), 15);
    }

    #[test]
    fn device_ptr_display() {
        assert_eq!(DevicePtr(0x1000).to_string(), "0x1000");
    }

    #[test]
    fn check_rejects_null_unallocated_and_misaligned() {
        let mut m = DeviceMemory::new();
        let p = m.alloc(64);
        assert_eq!(m.check(p.0, Width::B64, false), None);
        assert_eq!(m.check(p.0 + 56, Width::B64, true), None);
        // Null page.
        assert_eq!(
            m.check(0, Width::B8, false),
            Some(FaultKind::IllegalAddress)
        );
        // Past the allocation frontier.
        assert_eq!(
            m.check(m.frontier(), Width::B32, false),
            Some(FaultKind::IllegalAddress)
        );
        // Misaligned within bounds.
        assert_eq!(
            m.check(p.0 + 1, Width::B32, false),
            Some(FaultKind::MisalignedAccess)
        );
        // Address-space wraparound.
        assert_eq!(
            m.check(u64::MAX - 3, Width::B64, false),
            Some(FaultKind::MisalignedAccess)
        );
    }

    #[test]
    fn poison_range_faults_inside_live_allocation() {
        let mut m = DeviceMemory::new();
        let p = m.alloc(256);
        assert_eq!(m.check(p.0 + 128, Width::B64, false), None);
        m.set_poison(Some((p.0 + 128, p.0 + 160)));
        assert_eq!(
            m.check(p.0 + 128, Width::B64, false),
            Some(FaultKind::IllegalAddress)
        );
        // Overlap from below.
        assert_eq!(
            m.check(p.0 + 124, Width::B32, true),
            None,
            "access ending at the poison start is fine"
        );
        assert_eq!(
            m.check(p.0 + 152, Width::B64, true),
            Some(FaultKind::IllegalAddress)
        );
        assert_eq!(m.check(p.0 + 160, Width::B64, false), None);
        m.set_poison(None);
        assert_eq!(m.check(p.0 + 128, Width::B64, false), None);
    }
}
