//! # Multi-GPU node: devices joined by a second-level fabric.
//!
//! A [`GpuNode`] owns N [`Gpu`] instances (each the full sharded,
//! port-decoupled engine) and a node-level `ggpu-icnt` network — the same
//! flit/flow model the on-chip interconnects use, instantiated a second
//! time with one endpoint pair per device — carrying explicit peer-to-peer
//! copies between device memories.
//!
//! ## Determinism protocol
//!
//! The node is bit-identical at any host parallelism because fabric
//! traffic only ever moves at *host-serial* points:
//!
//! 1. [`GpuNode::try_p2p_copy`] runs on the host thread between device
//!    syncs. It resolves the transfer against a monotone **fabric clock**
//!    (the max of the participating devices' cycle counters and all prior
//!    fabric activity), so link contention is a pure function of the call
//!    order — which the host program fixes.
//! 2. The payload is queued into the destination's inbound
//!    [`ggpu_icnt::DeliveryQueue`] stamped with an arrival on the
//!    *destination's own* clock. The destination applies it in the serial
//!    post phase of exactly that cycle (its fast-forward is vetoed past
//!    the arrival), so device memory evolves identically whether the
//!    devices later simulate on one host thread or eight.
//! 3. [`GpuNode::try_sync_all`] runs the devices to completion — on
//!    parallel host threads when [`NodeConfig::parallel_hosts`] is set —
//!    and merges results in device-index order. Devices exchange no state
//!    while running (all fabric traffic was resolved in steps 1–2), so
//!    the parallel and serial paths are bit-identical by construction.
//!
//! Faults stay device-scoped: a P2P copy whose source device is faulted
//! returns that device's sticky error without touching the fabric, and a
//! stream fault inside one device's sync leaves every other device's
//! result untouched.
//!
//! ## Example
//!
//! ```
//! use ggpu_sim::{shard_ranges, GpuNode, NodeConfig};
//! use ggpu_isa::Program;
//!
//! let mut node = GpuNode::new(Program::new(), NodeConfig::test_small(2));
//! let a = node.device_mut(0).malloc(64);
//! let b = node.device_mut(1).malloc(64);
//! node.device_mut(0).memcpy_h2d(a, &[7u8; 64]);
//! node.p2p_copy(0, a, 1, b, 64);
//! node.sync_all();
//! assert_eq!(node.device_mut(1).memcpy_d2h(b, 64), vec![7u8; 64]);
//! assert_eq!(shard_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
//! ```

use std::ops::Range;

use ggpu_icnt::{Icnt, IcntConfig, IcntStats};
use ggpu_isa::Program;

use crate::config::GpuConfig;
use crate::device::Gpu;
use crate::error::SimError;
use crate::memory::DevicePtr;
use crate::stats::RunStats;
use crate::trace::{chrome_trace_json, TraceEvent};

/// Shift giving each device a disjoint grid-handle namespace
/// (`device << 40 | per-device counter`), so kernel records from different
/// devices never collide when merged into one report.
const GRID_BASE_SHIFT: u32 = 40;

/// The inter-GPU fabric: an `ggpu-icnt` instance at node level plus a
/// fixed per-transfer link latency (the NVLink-style serdes/protocol cost
/// that the flit model's 1-cycle hops don't capture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Flit-level network between the devices; topology/flit-width/router
    /// delay are swept exactly as for the on-chip networks.
    pub icnt: IcntConfig,
    /// Fixed cycles added to every transfer on top of the network model.
    pub link_latency: u64,
}

impl Default for FabricConfig {
    /// An NVLink-ish point-to-point fabric: crossbar reachability, 16-byte
    /// flits (narrower than the on-chip 40B — inter-package links
    /// serialize more), and a 700-cycle base link latency.
    fn default() -> Self {
        FabricConfig {
            icnt: IcntConfig {
                flit_bytes: 16,
                ..IcntConfig::default()
            },
            link_latency: 700,
        }
    }
}

/// Configuration for a [`GpuNode`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Number of devices in the node.
    pub n_devices: usize,
    /// Per-device configuration (every device is identical).
    pub gpu: GpuConfig,
    /// The inter-GPU fabric.
    pub fabric: FabricConfig,
    /// Simulate devices on parallel host threads in
    /// [`GpuNode::try_sync_all`]. Purely a wall-clock decision: results
    /// are bit-identical either way (see the module docs).
    pub parallel_hosts: bool,
}

impl NodeConfig {
    /// A node of `n` devices with the given per-device configuration,
    /// default fabric, and parallel host simulation.
    pub fn new(n_devices: usize, gpu: GpuConfig) -> Self {
        NodeConfig {
            n_devices,
            gpu,
            fabric: FabricConfig::default(),
            parallel_hosts: true,
        }
    }

    /// A small node for tests: `n` × [`GpuConfig::test_small`] devices.
    pub fn test_small(n_devices: usize) -> Self {
        Self::new(n_devices, GpuConfig::test_small())
    }

    /// Toggle parallel host simulation (builder style).
    pub fn with_parallel_hosts(mut self, on: bool) -> Self {
        self.parallel_hosts = on;
        self
    }

    /// Replace the fabric configuration (builder style).
    pub fn with_fabric(mut self, fabric: FabricConfig) -> Self {
        self.fabric = fabric;
        self
    }
}

/// Node-level statistics: per-device [`RunStats`] plus the fabric's
/// aggregate counters. Per-device counters telescope exactly to
/// [`NodeStats::total`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// One entry per device, in device-index order.
    pub devices: Vec<RunStats>,
    /// Inter-GPU fabric counters.
    pub fabric: IcntStats,
}

impl NodeStats {
    /// The node total: every per-device counter merged with
    /// [`RunStats::merge`] (sums, except `sm.cycles` which merges as a
    /// max — the devices run concurrently).
    pub fn total(&self) -> RunStats {
        let mut total = RunStats::default();
        for d in &self.devices {
            total.merge(d);
        }
        total
    }
}

/// N GPUs joined by an explicit inter-GPU fabric.
///
/// See the module docs for the determinism protocol. Devices are driven
/// through [`GpuNode::device_mut`] exactly as a single [`Gpu`] would be;
/// the node adds peer-to-peer copies ([`GpuNode::try_p2p_copy`]), a
/// node-wide sync ([`GpuNode::try_sync_all`]), merged statistics
/// ([`GpuNode::stats`]), and a per-device-pid Chrome trace
/// ([`GpuNode::chrome_trace`]).
#[derive(Debug)]
pub struct GpuNode {
    devices: Vec<Gpu>,
    fabric: Icnt,
    fabric_clock: u64,
    link_latency: u64,
    parallel_hosts: bool,
}

impl GpuNode {
    /// Build a node of `config.n_devices` identical devices all loaded
    /// with `program`.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_devices` is zero.
    pub fn new(program: Program, config: NodeConfig) -> Self {
        assert!(config.n_devices > 0, "a node needs at least one device");
        let devices = (0..config.n_devices)
            .map(|d| {
                let mut gpu = Gpu::new(program.clone(), config.gpu.clone());
                gpu.set_grid_base((d as u64) << GRID_BASE_SHIFT);
                gpu
            })
            .collect();
        GpuNode {
            devices,
            fabric: Icnt::new(config.fabric.icnt, config.n_devices, config.n_devices),
            fabric_clock: 0,
            link_latency: config.fabric.link_latency,
            parallel_hosts: config.parallel_hosts,
        }
    }

    /// Number of devices in the node.
    pub fn n_devices(&self) -> usize {
        self.devices.len()
    }

    /// Device `d`, immutable.
    pub fn device(&self, d: usize) -> &Gpu {
        &self.devices[d]
    }

    /// Device `d`, mutable — the handle through which kernels are
    /// launched and memory managed, exactly as on a single [`Gpu`].
    pub fn device_mut(&mut self, d: usize) -> &mut Gpu {
        &mut self.devices[d]
    }

    /// Iterate over the devices in index order.
    pub fn devices(&self) -> impl Iterator<Item = &Gpu> + '_ {
        self.devices.iter()
    }

    /// Inter-GPU fabric counters.
    pub fn fabric_stats(&self) -> &IcntStats {
        self.fabric.stats()
    }

    /// Copy `len` bytes from device `src`'s memory at `sptr` into device
    /// `dst`'s memory at `dptr`, over the fabric.
    ///
    /// Returns the modelled transfer latency in cycles. The source is
    /// charged immediately (counters and trace event); the payload lands
    /// in the destination's memory when its own clock reaches
    /// `dst.cycle() + latency` — i.e. during the next
    /// [`GpuNode::try_sync_all`] (or `tick`) that advances past the
    /// arrival. P2P transfers run the same fault-injection hooks as PCIe
    /// memcpys and share their transfer counter on the source device.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either index is out of range.
    pub fn try_p2p_copy(
        &mut self,
        src: usize,
        sptr: DevicePtr,
        dst: usize,
        dptr: DevicePtr,
        len: usize,
    ) -> Result<u64, SimError> {
        assert_ne!(src, dst, "P2P copy needs two distinct devices");
        // Monotone fabric clock: never behind either participant, never
        // behind prior fabric traffic — contention is a pure function of
        // host call order.
        let now = self
            .fabric_clock
            .max(self.devices[src].cycle())
            .max(self.devices[dst].cycle());
        let bytes = self.devices[src].p2p_read(sptr, len)?;
        let packet = u32::try_from(len).unwrap_or(u32::MAX);
        let from = self.fabric.src_node(src);
        let to = self.fabric.dst_node(dst);
        let arrival = self.fabric.send(from, to, packet, now);
        let latency = (arrival - now) + self.link_latency;
        self.fabric_clock = now;
        self.devices[src].p2p_charge_out(len as u64, latency);
        let dst_arrival = self.devices[dst].cycle() + latency;
        self.devices[dst].p2p_queue_inbound(dst_arrival, dptr, latency, bytes);
        Ok(latency)
    }

    /// Copy between device memories over the fabric.
    ///
    /// # Panics
    ///
    /// Panics where [`GpuNode::try_p2p_copy`] would return an error.
    pub fn p2p_copy(
        &mut self,
        src: usize,
        sptr: DevicePtr,
        dst: usize,
        dptr: DevicePtr,
        len: usize,
    ) {
        self.try_p2p_copy(src, sptr, dst, dptr, len)
            .unwrap_or_else(|e| panic!("p2p_copy failed: {e}"));
    }

    /// Run every device to completion, in parallel host threads when
    /// configured, returning each device's result in device-index order.
    ///
    /// A fault on one device (its `Err`) does not disturb the others:
    /// each device syncs independently, and all fabric traffic was
    /// already resolved before the devices started running.
    pub fn try_sync_all(&mut self) -> Vec<Result<u64, SimError>> {
        if self.parallel_hosts && self.devices.len() > 1 {
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .devices
                    .iter_mut()
                    .map(|g| s.spawn(move || g.try_synchronize()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("device thread panicked"))
                    .collect()
            })
        } else {
            self.devices.iter_mut().map(Gpu::try_synchronize).collect()
        }
    }

    /// Run every device to completion.
    ///
    /// # Panics
    ///
    /// Panics if any device faults or deadlocks.
    pub fn sync_all(&mut self) {
        for (d, r) in self.try_sync_all().into_iter().enumerate() {
            if let Err(e) = r {
                panic!("device {d} sync failed: {e}");
            }
        }
    }

    /// Whether any device still has work pending.
    pub fn busy(&self) -> bool {
        self.devices.iter().any(Gpu::busy)
    }

    /// Node-level statistics: per-device [`RunStats`] (telescoping to
    /// [`NodeStats::total`]) plus fabric counters.
    pub fn stats(&self) -> NodeStats {
        NodeStats {
            devices: self.devices.iter().map(Gpu::stats).collect(),
            fabric: *self.fabric.stats(),
        }
    }

    /// Reset every device's statistics and the fabric counters.
    pub fn reset_stats(&mut self) {
        for g in &mut self.devices {
            g.reset_stats();
        }
        self.fabric.reset_stats();
    }

    /// One Chrome trace for the whole node: device `d`'s events render
    /// under pid `d` (process label `gpu<d>`), with kernels and P2P/PCIe
    /// transfers on the same per-device thread rows a single-device trace
    /// uses. Requires [`GpuConfig::trace`] on the devices.
    pub fn chrome_trace(&self) -> String {
        let logs: Vec<(String, &[TraceEvent])> = self
            .devices
            .iter()
            .enumerate()
            .map(|(d, g)| (format!("gpu{d}"), g.trace_events()))
            .collect();
        chrome_trace_json(&logs, self.devices[0].config().clock_ghz)
    }
}

/// The device index a grid handle was issued by, for any grid launched
/// through a [`GpuNode`] (handles embed their device:
/// `device << 40 | per-device counter`). Grids from a standalone
/// [`Gpu`] map to device 0.
pub fn grid_device(grid: u64) -> usize {
    (grid >> GRID_BASE_SHIFT) as usize
}

/// Partition `n_items` into `n_shards` contiguous ranges in order, sizes
/// differing by at most one (the remainder spreads over the first
/// shards). Shards beyond `n_items` come back empty, so callers can
/// always index `ranges[d]` for device `d`. This is the node's work
/// partitioner: contiguous-in-order shards make the merged result
/// (concatenation in device-index order) identical to the unsharded run.
///
/// # Panics
///
/// Panics if `n_shards` is zero.
pub fn shard_ranges(n_items: usize, n_shards: usize) -> Vec<Range<usize>> {
    assert!(n_shards > 0, "cannot shard over zero shards");
    let base = n_items / n_shards;
    let rem = n_items % n_shards;
    let mut out = Vec::with_capacity(n_shards);
    let mut start = 0;
    for s in 0..n_shards {
        let len = base + usize::from(s < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultPlan;
    use crate::trace::CopyDir;
    use ggpu_isa::{KernelBuilder, LaunchDims, Operand, Space, Width};

    fn double_program() -> (Program, ggpu_isa::KernelId) {
        let mut b = KernelBuilder::new("double");
        let tid = b.global_tid();
        let v = b.reg();
        b.imul(v, tid, Operand::imm(2));
        let base = b.reg();
        b.ld_param(base, 0);
        let a = b.reg();
        b.imul(a, tid, Operand::imm(8));
        b.iadd(a, a, Operand::reg(base));
        b.st(Space::Global, Width::B64, Operand::reg(v), a, 0);
        b.exit();
        let mut p = Program::new();
        let k = p.add(b.finish());
        (p, k)
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n_items in [0usize, 1, 7, 64, 1000] {
            for n_shards in [1usize, 2, 3, 4, 7] {
                let ranges = shard_ranges(n_items, n_shards);
                assert_eq!(ranges.len(), n_shards);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "contiguous in order");
                    next = r.end;
                }
                assert_eq!(next, n_items, "covers all items");
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                assert!(max - min <= 1, "balanced within one");
            }
        }
    }

    #[test]
    fn p2p_roundtrip_delivers_payload() {
        let (p, _) = double_program();
        let mut node = GpuNode::new(p, NodeConfig::test_small(2));
        let a = node.device_mut(0).malloc(256);
        let b = node.device_mut(1).malloc(256);
        let data: Vec<u8> = (0..=255).collect();
        node.device_mut(0).memcpy_h2d(a, &data);
        let latency = node.try_p2p_copy(0, a, 1, b, 256).expect("p2p");
        assert!(latency >= 700, "link latency floor, got {latency}");
        // Not yet visible: the payload is in flight on the fabric.
        assert!(node.device(1).busy());
        node.sync_all();
        assert_eq!(node.device_mut(1).memcpy_d2h(b, 256), data);
        let s = node.stats();
        assert_eq!(s.devices[0].host.p2p_sends, 1);
        assert_eq!(s.devices[0].host.p2p_bytes_out, 256);
        assert_eq!(s.devices[1].host.p2p_recvs, 1);
        assert_eq!(s.devices[1].host.p2p_bytes_in, 256);
        assert_eq!(s.fabric.packets, 1);
        let total = s.total();
        assert_eq!(total.host.p2p_sends, 1);
        assert_eq!(total.host.p2p_recvs, 1);
    }

    #[test]
    fn p2p_shares_memcpy_fault_counter() {
        let (p, _) = double_program();
        let mut cfg = NodeConfig::test_small(2);
        // Transfer #1 on device 0 is the P2P read (transfer #0 is the H2D).
        cfg.gpu.fault_plan = FaultPlan {
            drop_memcpy: Some(1),
            ..FaultPlan::default()
        };
        let mut node = GpuNode::new(p, cfg);
        let a = node.device_mut(0).malloc(64);
        let b = node.device_mut(1).malloc(64);
        node.device_mut(0).memcpy_h2d(a, &[9u8; 64]);
        let err = node.try_p2p_copy(0, a, 1, b, 64).unwrap_err();
        match err {
            SimError::MemcpyDropped { index, dir } => {
                assert_eq!(index, 1);
                assert_eq!(dir, CopyDir::P2P);
            }
            other => panic!("expected MemcpyDropped, got {other}"),
        }
        // Non-sticky: the same copy succeeds on retry, and the
        // destination never saw the dropped transfer.
        node.try_p2p_copy(0, a, 1, b, 64).expect("retry");
        node.sync_all();
        assert_eq!(node.device_mut(1).memcpy_d2h(b, 64), vec![9u8; 64]);
    }

    #[test]
    fn sharded_kernel_matches_single_device() {
        let n_items = 1024u64;
        // Single device, whole problem.
        let (p, k) = double_program();
        let mut gpu = Gpu::new(p, GpuConfig::test_small());
        let out = gpu.malloc(n_items * 8);
        gpu.run_kernel(k, LaunchDims::linear((n_items / 32) as u32, 32), &[out.0]);
        let reference = gpu.memcpy_d2h(out, (n_items * 8) as usize);

        // Two devices, half each, merged in device-index order.
        let (p, k) = double_program();
        let mut node = GpuNode::new(p, NodeConfig::test_small(2));
        let shards = shard_ranges(n_items as usize, 2);
        let mut merged = Vec::new();
        for (d, r) in shards.iter().enumerate() {
            let n = r.len() as u64;
            let out = node.device_mut(d).malloc(n * 8);
            node.device_mut(d)
                .launch(k, LaunchDims::linear((n / 32) as u32, 32), &[out.0]);
            node.sync_all();
            let bytes = node.device_mut(d).memcpy_d2h(out, (n * 8) as usize);
            // Shard d computes tids 0..n; rebase to the global index.
            for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                let v = u64::from_le_bytes(chunk.try_into().unwrap());
                merged.push(((r.start as u64 + i as u64) * 2, v + r.start as u64 * 2));
            }
        }
        for (i, chunk) in reference.chunks_exact(8).enumerate() {
            let want = u64::from_le_bytes(chunk.try_into().unwrap());
            assert_eq!(merged[i].1, want, "item {i}");
            assert_eq!(merged[i].0, want, "item {i} global value");
        }
    }

    #[test]
    fn parallel_and_serial_hosts_are_bit_identical() {
        let run = |parallel: bool| {
            let (p, k) = double_program();
            let mut node = GpuNode::new(p, NodeConfig::test_small(2).with_parallel_hosts(parallel));
            let mut outs = Vec::new();
            for d in 0..2 {
                let out = node.device_mut(d).malloc(256 * 8);
                node.device_mut(d)
                    .launch(k, LaunchDims::linear(8, 32), &[out.0]);
                outs.push(out);
            }
            node.sync_all();
            // Cross-copy results over the fabric and sync again.
            let x0 = node.device_mut(1).malloc(256 * 8);
            node.p2p_copy(0, outs[0], 1, x0, 256 * 8);
            node.sync_all();
            let stats = node.stats();
            let mem: Vec<Vec<u8>> = (0..2)
                .map(|d| node.device_mut(d).memcpy_d2h(outs[d], 256 * 8))
                .collect();
            (stats, mem)
        };
        let (s_ser, m_ser) = run(false);
        let (s_par, m_par) = run(true);
        assert_eq!(s_ser, s_par);
        assert_eq!(m_ser, m_par);
    }

    #[test]
    fn grid_handles_are_disjoint_across_devices() {
        let (p, k) = double_program();
        let mut cfg = NodeConfig::test_small(2);
        cfg.gpu = cfg.gpu.with_kernel_records(true);
        let mut node = GpuNode::new(p, cfg);
        for d in 0..2 {
            let out = node.device_mut(d).malloc(64 * 8);
            node.device_mut(d)
                .launch(k, LaunchDims::linear(2, 32), &[out.0]);
        }
        node.sync_all();
        let g0 = node.device(0).kernel_records()[0].grid;
        let g1 = node.device(1).kernel_records()[0].grid;
        assert_ne!(g0, g1);
        assert_eq!(g1 >> GRID_BASE_SHIFT, 1);
    }
}
