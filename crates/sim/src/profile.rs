//! Time-resolved profiling: per-kernel counter scoping, the interval
//! sampler, and the machine-readable [`ProfileReport`] export.
//!
//! All three layers are built on one primitive —
//! [`RunStats::delta_since`] between two whole-machine counter snapshots —
//! so every number in a record or sample is a plain counter difference,
//! not a separately maintained statistic. Hot-path counters stay ordinary
//! fields; the profiler only reads them at kernel-retire and
//! interval boundaries.

use std::collections::VecDeque;

use ggpu_isa::{InstrClass, Space, WARP_SIZE};
use ggpu_mem::{CacheStats, DramStats};
use ggpu_sm::{PcCounters, SmStats, StallBreakdown, StallReason};

/// All instruction classes, in Figure 8's display order.
const INSTR_CLASSES: [InstrClass; 5] = [
    InstrClass::Int,
    InstrClass::Fp,
    InstrClass::LdSt,
    InstrClass::Sfu,
    InstrClass::Ctrl,
];

use crate::json::JsonWriter;
use crate::stats::RunStats;
use crate::trace::{chrome_trace_json, TraceEvent};

/// Counter record for one kernel launch (host or CDP child).
///
/// Attribution is by *retire interval*: a record's [`KernelRecord::stats`]
/// delta covers every counter increment between the previous grid
/// retirement (or run start) and this grid's retirement. Retire intervals
/// partition the run, so per-kernel deltas always sum exactly to the run
/// totals — including when CDP children overlap their parent, in which
/// case concurrent parent activity is attributed to whichever grid retires
/// the window.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Grid handle (unique per launch within a `Gpu`).
    pub grid: u64,
    /// Kernel name.
    pub kernel: String,
    /// Kernel id in the loaded program.
    pub kernel_id: u32,
    /// CTAs in the grid.
    pub ctas: u64,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// `None` for host launches; `Some(parent grid handle)` for CDP
    /// children.
    pub parent: Option<u64>,
    /// CDP nesting depth (0 for host grids).
    pub depth: u32,
    /// Stream the grid was launched on (0 = default stream; CDP children
    /// inherit their parent's stream).
    pub stream: usize,
    /// Device cycle at which the grid was enqueued.
    pub launch_cycle: u64,
    /// Device cycle at which the first CTA dispatched (after launch
    /// overhead); equals `launch_cycle` if the grid retired without
    /// dispatching.
    pub start_cycle: u64,
    /// Device cycle at which the last CTA completed.
    pub retire_cycle: u64,
    /// Counter delta for this record's retire interval.
    pub stats: RunStats,
}

impl KernelRecord {
    /// Whether this record is a CDP child launch.
    pub fn is_cdp_child(&self) -> bool {
        self.parent.is_some()
    }

    /// Launch-to-retire latency in cycles (includes launch overhead and,
    /// for host grids, queueing behind earlier grids on the stream).
    pub fn latency_cycles(&self) -> u64 {
        self.retire_cycle.saturating_sub(self.launch_cycle)
    }

    /// Warp-instructions per cycle over the record's execution window
    /// (start to retire); zero for a degenerate window.
    pub fn ipc(&self) -> f64 {
        let window = self.retire_cycle.saturating_sub(self.start_cycle);
        if window == 0 {
            0.0
        } else {
            self.stats.sm.issued as f64 / window as f64
        }
    }

    /// Serialize as a standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.u64("grid", self.grid)
            .str("kernel", &self.kernel)
            .u64("kernel_id", self.kernel_id as u64)
            .u64("ctas", self.ctas)
            .u64("threads_per_cta", self.threads_per_cta as u64)
            .str("origin", if self.is_cdp_child() { "cdp" } else { "host" })
            .opt_u64("parent", self.parent)
            .u64("depth", self.depth as u64)
            .u64("stream", self.stream as u64)
            .u64("launch_cycle", self.launch_cycle)
            .u64("start_cycle", self.start_cycle)
            .u64("retire_cycle", self.retire_cycle)
            .f64("ipc", self.ipc())
            .raw("stats", &run_stats_json(&self.stats));
        w.end_obj();
        w.finish()
    }
}

/// One interval sample: the counter delta over `[start_cycle, end_cycle)`
/// plus derived rates.
///
/// Regular samples span exactly
/// [`crate::GpuConfig::sample_interval_cycles`]; the trailing sample of a
/// `synchronize` (flushed so that samples always sum to the aggregate
/// counters) may be shorter.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSample {
    /// First cycle covered (inclusive).
    pub start_cycle: u64,
    /// One past the last cycle covered.
    pub end_cycle: u64,
    /// Counter delta over the window.
    pub stats: RunStats,
}

impl IntervalSample {
    /// Window length in cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle.saturating_sub(self.start_cycle)
    }

    /// Warp-instructions per cycle over the window.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.stats.sm.issued as f64 / c as f64
        }
    }

    /// Mean active lanes per issued warp-instruction (SIMD occupancy),
    /// in `[0, 32]`.
    pub fn occupancy(&self) -> f64 {
        self.stats.sm.avg_active_lanes()
    }

    /// L1 miss rate over the window's accesses.
    pub fn l1_miss_rate(&self) -> f64 {
        self.stats.l1.miss_rate()
    }

    /// L2 miss rate over the window's accesses.
    pub fn l2_miss_rate(&self) -> f64 {
        self.stats.l2.miss_rate()
    }

    /// DRAM data-pin utilization over the window.
    pub fn dram_utilization(&self) -> f64 {
        self.stats.dram.utilization(self.cycles())
    }

    /// NoC utilization proxy: flits moved per cycle across both networks.
    pub fn noc_flits_per_cycle(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            (self.stats.icnt_req.flits + self.stats.icnt_rep.flits) as f64 / c as f64
        }
    }

    /// Fraction of the window's stall cycles attributed to `reason`.
    pub fn stall_fraction(&self, reason: StallReason) -> f64 {
        self.stats.sm.stalls.fraction(reason)
    }

    /// Serialize as a standalone JSON object (derived rates plus the raw
    /// counter delta).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.u64("start_cycle", self.start_cycle)
            .u64("end_cycle", self.end_cycle)
            .f64("ipc", self.ipc())
            .f64("occupancy", self.occupancy())
            .f64("l1_miss_rate", self.l1_miss_rate())
            .f64("l2_miss_rate", self.l2_miss_rate())
            .f64("dram_utilization", self.dram_utilization())
            .f64("noc_flits_per_cycle", self.noc_flits_per_cycle());
        w.begin_obj_key("stall_fractions");
        for reason in StallReason::ALL {
            w.f64(reason.name(), self.stall_fraction(reason));
        }
        w.end_obj();
        w.raw("stats", &run_stats_json(&self.stats));
        w.end_obj();
        w.finish()
    }
}

/// Interval-sampler state (owned by the device; populated only when
/// [`crate::GpuConfig::sample_interval_cycles`] is non-zero).
#[derive(Debug)]
pub(crate) struct Sampler {
    /// Sampling period in cycles.
    pub interval: u64,
    /// Ring capacity; the oldest sample is dropped (and counted) beyond it.
    pub capacity: usize,
    /// Counter snapshot at the last emitted boundary.
    pub base: RunStats,
    /// Cycle of the last emitted boundary.
    pub last_boundary: u64,
    /// Completed samples, oldest first.
    pub ring: VecDeque<IntervalSample>,
    /// Samples evicted from the ring.
    pub dropped: u64,
}

impl Sampler {
    pub fn new(interval: u64, capacity: usize) -> Self {
        Sampler {
            interval,
            capacity: capacity.max(1),
            base: RunStats::default(),
            last_boundary: 0,
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Close the window `[last_boundary, now)` against snapshot `now_stats`.
    pub fn close_window(&mut self, now: u64, now_stats: &RunStats) {
        if now <= self.last_boundary {
            return;
        }
        let delta = now_stats.delta_since(&self.base);
        self.ring.push_back(IntervalSample {
            start_cycle: self.last_boundary,
            end_cycle: now,
            stats: delta,
        });
        if self.ring.len() > self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.base = now_stats.clone();
        self.last_boundary = now;
    }
}

/// One instruction row in a kernel's annotated listing: a PC, its
/// disassembly, and every counter charged to it.
#[derive(Debug, Clone, PartialEq)]
pub struct PcProfileRow {
    /// Program counter (index into the kernel's instruction stream).
    pub pc: usize,
    /// Disassembled instruction at this PC.
    pub instr: String,
    /// Counters attributed to this PC, merged across SMs.
    pub counters: PcCounters,
}

/// Annotated listing for one kernel: every instruction with its merged
/// per-PC counters — the simulator's analogue of an nvprof source-level
/// profile.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPcProfile {
    /// Kernel id in the loaded program.
    pub kernel_id: u32,
    /// Kernel name.
    pub kernel: String,
    /// One row per PC, in program order.
    pub rows: Vec<PcProfileRow>,
}

impl KernelPcProfile {
    /// Total warp-instructions issued from this kernel's PCs.
    pub fn total_issues(&self) -> u64 {
        self.rows.iter().map(|r| r.counters.issues).sum()
    }

    /// Serialize as a standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.u64("kernel_id", self.kernel_id as u64)
            .str("kernel", &self.kernel);
        w.begin_arr_key("rows");
        for r in &self.rows {
            w.elem_raw(&pc_row_json(r));
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

/// The code axis of attribution: per-PC counters for every kernel, plus
/// the stall cycles no instruction could be charged for (idle SMs, launch
/// overhead, dead warps).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PcProfile {
    /// One annotated listing per kernel, in kernel-id order.
    pub kernels: Vec<KernelPcProfile>,
    /// Stall cycles with no attributable (kernel, PC).
    pub unattributed: StallBreakdown,
}

impl PcProfile {
    /// Sum a per-PC counter over every kernel and PC.
    pub fn total<F: Fn(&PcCounters) -> u64>(&self, f: F) -> u64 {
        self.kernels
            .iter()
            .flat_map(|k| k.rows.iter())
            .map(|r| f(&r.counters))
            .sum()
    }

    /// Serialize as a standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.begin_arr_key("kernels");
        for k in &self.kernels {
            w.elem_raw(&k.to_json());
        }
        w.end_arr();
        w.raw("unattributed", &stalls_json(&self.unattributed));
        w.end_obj();
        w.finish()
    }
}

/// One SM's row in the space axis: its full counter set plus its network
/// endpoint traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct SmUnit {
    /// SM index.
    pub sm: usize,
    /// This SM's counters (issues, stalls, occupancy, ...).
    pub stats: SmStats,
    /// This SM's L1 data-cache counters.
    pub l1: CacheStats,
    /// Packets this SM injected into the request network.
    pub req_injected: u64,
    /// Packets the reply network delivered to this SM.
    pub rep_delivered: u64,
}

/// One memory partition's row in the space axis: L2 slice, DRAM channel
/// (with per-bank detail), and network endpoint traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionUnit {
    /// Partition index.
    pub partition: usize,
    /// L2 slice counters.
    pub l2: CacheStats,
    /// DRAM channel counters.
    pub dram: DramStats,
    /// Per-bank `(requests, row_hits)` within the channel.
    pub banks: Vec<(u64, u64)>,
    /// Packets the request network delivered to this partition.
    pub req_delivered: u64,
    /// Packets this partition injected into the reply network.
    pub rep_injected: u64,
}

/// The space axis of attribution: every counter resolved per hardware
/// unit (SM, L2 slice, DRAM channel/bank, network endpoint). Always
/// collected — these are the units' own counters, read at report time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UnitProfile {
    /// Per-SM rows, in SM-index order.
    pub sms: Vec<SmUnit>,
    /// Per-partition rows, in partition order.
    pub partitions: Vec<PartitionUnit>,
}

impl UnitProfile {
    /// Serialize as a standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.begin_arr_key("sms");
        for u in &self.sms {
            w.elem_raw(&sm_unit_json(u));
        }
        w.end_arr();
        w.begin_arr_key("partitions");
        for p in &self.partitions {
            w.elem_raw(&partition_unit_json(p));
        }
        w.end_arr();
        w.end_obj();
        w.finish()
    }
}

fn stalls_json(s: &StallBreakdown) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    for reason in StallReason::ALL {
        w.u64(reason.name(), s.get(reason));
    }
    w.end_obj();
    w.finish()
}

fn cache_json(c: &CacheStats) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.u64("read_access", c.read_access)
        .u64("read_hit", c.read_hit)
        .u64("write_access", c.write_access)
        .u64("write_hit", c.write_hit)
        .u64("mshr_merged", c.mshr_merged)
        .u64("reservation_fails", c.reservation_fails)
        .u64("writebacks", c.writebacks);
    w.end_obj();
    w.finish()
}

fn pc_row_json(r: &PcProfileRow) -> String {
    let c = &r.counters;
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.u64("pc", r.pc as u64)
        .str("instr", &r.instr)
        .u64("issues", c.issues)
        .u64("lanes", c.lanes)
        .u64("l1_accesses", c.l1_accesses)
        .u64("l1_hits", c.l1_hits)
        .u64("mem_txns", c.mem_txns)
        .u64("replays", c.replays)
        .u64("offchip_txns", c.offchip_txns)
        .raw("stalls", &stalls_json(&c.stalls));
    w.end_obj();
    w.finish()
}

fn sm_unit_json(u: &SmUnit) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.u64("sm", u.sm as u64)
        .u64("cycles", u.stats.cycles)
        .u64("issued", u.stats.issued)
        .u64("thread_instrs", u.stats.thread_instrs)
        .u64("offchip_txns", u.stats.offchip_txns)
        .u64("ctas_completed", u.stats.ctas_completed)
        .f64("avg_active_lanes", u.stats.avg_active_lanes())
        .raw("stalls", &stalls_json(&u.stats.stalls))
        .raw("l1", &cache_json(&u.l1))
        .u64("req_injected", u.req_injected)
        .u64("rep_delivered", u.rep_delivered);
    w.end_obj();
    w.finish()
}

fn partition_unit_json(p: &PartitionUnit) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();
    w.u64("partition", p.partition as u64)
        .raw("l2", &cache_json(&p.l2));
    w.begin_obj_key("dram");
    w.u64("requests", p.dram.requests)
        .u64("row_hits", p.dram.row_hits)
        .u64("data_cycles", p.dram.data_cycles)
        .u64("active_cycles", p.dram.active_cycles)
        .u64("rejected", p.dram.rejected);
    w.end_obj();
    w.begin_arr_key("banks");
    for &(requests, row_hits) in &p.banks {
        let mut b = JsonWriter::new();
        b.begin_obj();
        b.u64("requests", requests).u64("row_hits", row_hits);
        b.end_obj();
        w.elem_raw(&b.finish());
    }
    w.end_arr();
    w.u64("req_delivered", p.req_delivered)
        .u64("rep_injected", p.rep_injected);
    w.end_obj();
    w.finish()
}

/// Everything the profiler collected over a run, in one machine-readable
/// bundle: final counters, per-kernel records, interval samples, and the
/// event trace. Obtained from [`crate::Gpu::take_profile`].
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Final whole-run counters at the time the report was taken.
    pub stats: RunStats,
    /// GPU clock in GHz (for cycle→time conversion in exports).
    pub clock_ghz: f64,
    /// One record per retired kernel launch, in retire order.
    pub kernels: Vec<KernelRecord>,
    /// Interval samples, oldest first.
    pub samples: Vec<IntervalSample>,
    /// Samples evicted from the ring before the report was taken.
    pub samples_dropped: u64,
    /// The event trace (empty unless tracing was enabled).
    pub events: Vec<TraceEvent>,
    /// Events dropped after the trace buffer filled.
    pub events_dropped: u64,
    /// Code-axis attribution (per-PC counters, symbolicated); `None`
    /// unless [`ggpu_sm::SmConfig::attribution`] was on.
    pub pc: Option<PcProfile>,
    /// Space-axis attribution (per-unit counters); always collected.
    pub units: UnitProfile,
}

impl ProfileReport {
    /// Serialize the full report (stats, kernels, samples, events) as one
    /// JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.f64("clock_ghz", self.clock_ghz)
            .raw("stats", &run_stats_json(&self.stats));
        w.begin_arr_key("kernels");
        for k in &self.kernels {
            w.elem_raw(&k.to_json());
        }
        w.end_arr();
        w.begin_arr_key("samples");
        for s in &self.samples {
            w.elem_raw(&s.to_json());
        }
        w.end_arr();
        w.u64("samples_dropped", self.samples_dropped);
        w.begin_arr_key("events");
        for e in &self.events {
            w.elem_raw(&e.to_json());
        }
        w.end_arr();
        w.u64("events_dropped", self.events_dropped);
        match &self.pc {
            Some(p) => w.raw("pc_profile", &p.to_json()),
            None => w.raw("pc_profile", "null"),
        };
        w.raw("units", &self.units.to_json());
        w.end_obj();
        w.finish()
    }

    /// Total observability records silently truncated: dropped interval
    /// samples plus dropped trace events. Harnesses surface this so a
    /// partial report is never mistaken for a complete one.
    pub fn dropped_total(&self) -> u64 {
        self.samples_dropped + self.events_dropped
    }

    /// Render this report's event trace as a Chrome-trace JSON document
    /// viewable in Perfetto (<https://ui.perfetto.dev>) or
    /// `chrome://tracing`.
    pub fn chrome_trace(&self, label: &str) -> String {
        chrome_trace_json(
            &[(label.to_string(), self.events.as_slice())],
            if self.clock_ghz > 0.0 {
                self.clock_ghz
            } else {
                1.0
            },
        )
    }
}

/// Serialize a [`RunStats`] snapshot (or delta) as a JSON object: every
/// raw counter, plus a `derived` block with the headline rates.
pub fn run_stats_json(s: &RunStats) -> String {
    let mut w = JsonWriter::new();
    w.begin_obj();

    w.begin_obj_key("host");
    w.u64("kernel_launches", s.host.kernel_launches)
        .u64("pci_count", s.host.pci_count)
        .u64("pci_cycles", s.host.pci_cycles)
        .u64("kernel_cycles", s.host.kernel_cycles)
        .u64("h2d_bytes", s.host.h2d_bytes)
        .u64("d2h_bytes", s.host.d2h_bytes)
        .u64("p2p_sends", s.host.p2p_sends)
        .u64("p2p_recvs", s.host.p2p_recvs)
        .u64("p2p_bytes_out", s.host.p2p_bytes_out)
        .u64("p2p_bytes_in", s.host.p2p_bytes_in)
        .u64("p2p_cycles", s.host.p2p_cycles);
    w.end_obj();

    w.begin_obj_key("sm");
    w.u64("cycles", s.sm.cycles)
        .u64("issued", s.sm.issued)
        .u64("thread_instrs", s.sm.thread_instrs);
    w.begin_obj_key("instr_mix");
    for class in INSTR_CLASSES {
        w.u64(&class.to_string(), s.sm.class_count(class));
    }
    w.end_obj();
    w.begin_obj_key("mem_space");
    for space in Space::ALL {
        w.u64(space.name(), s.sm.space_count(space));
    }
    w.end_obj();
    w.begin_arr_key("occupancy");
    for i in 0..WARP_SIZE {
        w.elem_u64(s.sm.occupancy[i]);
    }
    w.end_arr();
    w.begin_obj_key("stalls");
    for reason in StallReason::ALL {
        w.u64(reason.name(), s.sm.stalls.get(reason));
    }
    w.end_obj();
    w.u64("bank_conflict_cycles", s.sm.bank_conflict_cycles)
        .u64("offchip_txns", s.sm.offchip_txns)
        .u64("ctas_completed", s.sm.ctas_completed)
        .u64("device_launches", s.sm.device_launches);
    w.end_obj();

    for (key, c) in [("l1", &s.l1), ("l2", &s.l2)] {
        w.begin_obj_key(key);
        w.u64("read_access", c.read_access)
            .u64("read_hit", c.read_hit)
            .u64("write_access", c.write_access)
            .u64("write_hit", c.write_hit)
            .u64("mshr_merged", c.mshr_merged)
            .u64("reservation_fails", c.reservation_fails)
            .u64("writebacks", c.writebacks);
        w.end_obj();
    }

    w.begin_obj_key("dram");
    w.u64("requests", s.dram.requests)
        .u64("row_hits", s.dram.row_hits)
        .u64("data_cycles", s.dram.data_cycles)
        .u64("active_cycles", s.dram.active_cycles)
        .u64("rejected", s.dram.rejected);
    w.end_obj();

    for (key, n) in [("icnt_req", &s.icnt_req), ("icnt_rep", &s.icnt_rep)] {
        w.begin_obj_key(key);
        w.u64("packets", n.packets)
            .u64("flits", n.flits)
            .u64("total_latency", n.total_latency)
            .u64("queueing", n.queueing);
        w.end_obj();
    }

    w.begin_obj_key("derived");
    w.f64("ipc", s.ipc())
        .f64("l1_miss_rate", s.l1.miss_rate())
        .f64("l2_miss_rate", s.l2.miss_rate())
        .f64("dram_efficiency", s.dram.efficiency())
        .f64("dram_utilization", s.dram_utilization())
        .u64("total_cycles", s.total_cycles());
    w.end_obj();

    w.end_obj();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn sampler_closes_windows_and_telescopes() {
        let mut s = Sampler::new(100, 8);
        let mut snap = RunStats::default();
        snap.sm.issued = 40;
        s.close_window(100, &snap);
        snap.sm.issued = 90;
        s.close_window(200, &snap);
        // Same boundary again: no empty duplicate.
        s.close_window(200, &snap);
        assert_eq!(s.ring.len(), 2);
        assert_eq!(s.ring[0].stats.sm.issued, 40);
        assert_eq!(s.ring[1].stats.sm.issued, 50);
        let total: u64 = s.ring.iter().map(|x| x.stats.sm.issued).sum();
        assert_eq!(total, snap.sm.issued);
        assert_eq!(s.ring[1].cycles(), 100);
    }

    #[test]
    fn sampler_ring_evicts_oldest() {
        let mut s = Sampler::new(10, 2);
        let mut snap = RunStats::default();
        for i in 1..=4u64 {
            snap.sm.issued = i * 10;
            s.close_window(i * 10, &snap);
        }
        assert_eq!(s.ring.len(), 2);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.ring[0].start_cycle, 20);
    }

    #[test]
    fn run_stats_json_parses_with_all_sections() {
        let mut s = RunStats::default();
        s.host.kernel_cycles = 100;
        s.sm.issued = 250;
        let v = Json::parse(&run_stats_json(&s)).expect("well-formed");
        for key in [
            "host", "sm", "l1", "l2", "dram", "icnt_req", "icnt_rep", "derived",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            v.get("sm")
                .and_then(|sm| sm.get("issued"))
                .and_then(Json::as_u64),
            Some(250)
        );
        assert_eq!(
            v.get("derived")
                .and_then(|d| d.get("ipc"))
                .and_then(Json::as_f64),
            Some(2.5)
        );
    }

    #[test]
    fn attribution_sections_serialize() {
        let counters = PcCounters {
            issues: 7,
            ..PcCounters::default()
        };
        let report = ProfileReport {
            pc: Some(PcProfile {
                kernels: vec![KernelPcProfile {
                    kernel_id: 0,
                    kernel: "k".to_string(),
                    rows: vec![PcProfileRow {
                        pc: 0,
                        instr: "exit".to_string(),
                        counters,
                    }],
                }],
                unattributed: StallBreakdown::default(),
            }),
            units: UnitProfile {
                sms: vec![SmUnit {
                    sm: 0,
                    stats: SmStats::default(),
                    l1: CacheStats::default(),
                    req_injected: 3,
                    rep_delivered: 2,
                }],
                partitions: vec![PartitionUnit {
                    partition: 0,
                    l2: CacheStats::default(),
                    dram: DramStats::default(),
                    banks: vec![(5, 4)],
                    req_delivered: 3,
                    rep_injected: 2,
                }],
            },
            ..Default::default()
        };
        assert_eq!(report.pc.as_ref().map(|p| p.total(|c| c.issues)), Some(7));
        let v = Json::parse(&report.to_json()).expect("well-formed");
        let pc = v.get("pc_profile").expect("pc_profile");
        let rows = pc
            .get("kernels")
            .and_then(Json::as_arr)
            .and_then(|ks| ks[0].get("rows"))
            .and_then(Json::as_arr)
            .expect("rows");
        assert_eq!(rows[0].get("issues").and_then(Json::as_u64), Some(7));
        let units = v.get("units").expect("units");
        let sms = units.get("sms").and_then(Json::as_arr).expect("sms");
        assert_eq!(sms[0].get("req_injected").and_then(Json::as_u64), Some(3));
        let parts = units
            .get("partitions")
            .and_then(Json::as_arr)
            .expect("partitions");
        let banks = parts[0].get("banks").and_then(Json::as_arr).expect("banks");
        assert_eq!(banks[0].get("requests").and_then(Json::as_u64), Some(5));
        // Attribution off: pc_profile serializes as an explicit null.
        let off = ProfileReport::default();
        let v = Json::parse(&off.to_json()).expect("well-formed");
        assert_eq!(v.get("pc_profile"), Some(&Json::Null));
    }

    #[test]
    fn profile_report_json_round_trips() {
        let report = ProfileReport {
            stats: RunStats::default(),
            clock_ghz: 1.5,
            kernels: vec![KernelRecord {
                grid: 1,
                kernel: "k".to_string(),
                kernel_id: 0,
                ctas: 4,
                threads_per_cta: 64,
                parent: None,
                depth: 0,
                stream: 0,
                launch_cycle: 0,
                start_cycle: 100,
                retire_cycle: 900,
                stats: RunStats::default(),
            }],
            samples: vec![IntervalSample {
                start_cycle: 0,
                end_cycle: 500,
                stats: RunStats::default(),
            }],
            samples_dropped: 0,
            events: Vec::new(),
            events_dropped: 0,
            ..Default::default()
        };
        let v = Json::parse(&report.to_json()).expect("well-formed");
        let kernels = v.get("kernels").and_then(Json::as_arr).expect("kernels");
        assert_eq!(kernels.len(), 1);
        assert_eq!(
            kernels[0].get("origin").and_then(Json::as_str),
            Some("host")
        );
        assert_eq!(kernels[0].get("parent"), Some(&Json::Null));
        let samples = v.get("samples").and_then(Json::as_arr).expect("samples");
        assert_eq!(
            samples[0].get("end_cycle").and_then(Json::as_u64),
            Some(500)
        );
        // The chrome trace is also well-formed JSON even when empty.
        Json::parse(&report.chrome_trace("t")).expect("chrome trace well-formed");
    }
}
