//! Aggregated run statistics across the whole GPU plus the host model.

use ggpu_icnt::IcntStats;
use ggpu_mem::{CacheStats, DramStats};
use ggpu_sm::SmStats;

/// Host-side activity counters (the Figure 4 data).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostStats {
    /// Host kernel launches (`<<<>>>` invocations).
    pub kernel_launches: u64,
    /// `cudaMemcpy` calls (PCI transactions).
    pub pci_count: u64,
    /// Cycles spent in PCI transfers.
    pub pci_cycles: u64,
    /// Cycles spent executing kernels (inside `synchronize`).
    pub kernel_cycles: u64,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
    /// Peer-to-peer transfers this device initiated over the node fabric.
    pub p2p_sends: u64,
    /// Peer-to-peer transfers that landed in this device's memory.
    pub p2p_recvs: u64,
    /// Bytes this device sent to peer devices.
    pub p2p_bytes_out: u64,
    /// Bytes this device received from peer devices.
    pub p2p_bytes_in: u64,
    /// Modelled fabric cycles charged to this device's outbound transfers
    /// (serialization + link latency, including queueing).
    pub p2p_cycles: u64,
}

impl HostStats {
    /// Average kernel time per launch in cycles.
    pub fn avg_kernel_cycles(&self) -> f64 {
        if self.kernel_launches == 0 {
            0.0
        } else {
            self.kernel_cycles as f64 / self.kernel_launches as f64
        }
    }

    /// Average PCI time per transfer in cycles.
    pub fn avg_pci_cycles(&self) -> f64 {
        if self.pci_count == 0 {
            0.0
        } else {
            self.pci_cycles as f64 / self.pci_count as f64
        }
    }
}

/// Snapshot of every counter in the machine after a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Host-side counters.
    pub host: HostStats,
    /// Merged SM counters (instruction mix, occupancy, stalls, ...).
    pub sm: SmStats,
    /// Merged L1 data-cache counters across SMs.
    pub l1: CacheStats,
    /// Merged L2 counters across partitions.
    pub l2: CacheStats,
    /// Merged DRAM counters across channels.
    pub dram: DramStats,
    /// Request-network counters.
    pub icnt_req: IcntStats,
    /// Reply-network counters.
    pub icnt_rep: IcntStats,
}

impl RunStats {
    /// Whole-GPU instructions per cycle over kernel-execution time.
    pub fn ipc(&self) -> f64 {
        if self.host.kernel_cycles == 0 {
            0.0
        } else {
            self.sm.issued as f64 / self.host.kernel_cycles as f64
        }
    }

    /// DRAM utilization over kernel cycles (Figure 18).
    pub fn dram_utilization(&self) -> f64 {
        self.dram.utilization(self.host.kernel_cycles)
    }

    /// End-to-end cycles (kernel + PCI).
    pub fn total_cycles(&self) -> u64 {
        self.host.kernel_cycles + self.host.pci_cycles
    }

    /// Convert cycles to seconds at `clock_ghz`.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.total_cycles() as f64 / (clock_ghz * 1e9)
    }

    /// Merge two cache stats (helper for aggregation).
    pub(crate) fn merge_cache(into: &mut CacheStats, from: &CacheStats) {
        into.read_access += from.read_access;
        into.read_hit += from.read_hit;
        into.write_access += from.write_access;
        into.write_hit += from.write_hit;
        into.mshr_merged += from.mshr_merged;
        into.reservation_fails += from.reservation_fails;
        into.writebacks += from.writebacks;
    }

    /// Merge two DRAM stats (helper for aggregation).
    pub(crate) fn merge_dram(into: &mut DramStats, from: &DramStats) {
        into.requests += from.requests;
        into.row_hits += from.row_hits;
        into.data_cycles += from.data_cycles;
        into.active_cycles += from.active_cycles;
        into.rejected += from.rejected;
    }

    /// Field-wise accumulation of another snapshot into this one — the
    /// node-level aggregation primitive: per-device [`RunStats`] merge in
    /// device-index order and the result is the node total every per-device
    /// counter telescopes to. `sm.cycles` merges as a max (the same rule
    /// the device applies across its SMs); every other counter sums.
    pub fn merge(&mut self, other: &RunStats) {
        self.host.kernel_launches += other.host.kernel_launches;
        self.host.pci_count += other.host.pci_count;
        self.host.pci_cycles += other.host.pci_cycles;
        self.host.kernel_cycles += other.host.kernel_cycles;
        self.host.h2d_bytes += other.host.h2d_bytes;
        self.host.d2h_bytes += other.host.d2h_bytes;
        self.host.p2p_sends += other.host.p2p_sends;
        self.host.p2p_recvs += other.host.p2p_recvs;
        self.host.p2p_bytes_out += other.host.p2p_bytes_out;
        self.host.p2p_bytes_in += other.host.p2p_bytes_in;
        self.host.p2p_cycles += other.host.p2p_cycles;
        self.sm.merge(&other.sm);
        Self::merge_cache(&mut self.l1, &other.l1);
        Self::merge_cache(&mut self.l2, &other.l2);
        Self::merge_dram(&mut self.dram, &other.dram);
        merge_icnt(&mut self.icnt_req, &other.icnt_req);
        merge_icnt(&mut self.icnt_rep, &other.icnt_rep);
    }

    /// Field-wise counter delta since an earlier snapshot `base`
    /// (saturating, so a reset between snapshots yields zeros rather than
    /// wrapping). This is the primitive behind per-kernel counter scoping
    /// and the interval sampler: every counter in the result covers exactly
    /// the window between the two snapshots.
    pub fn delta_since(&self, base: &RunStats) -> RunStats {
        RunStats {
            host: HostStats {
                kernel_launches: self
                    .host
                    .kernel_launches
                    .saturating_sub(base.host.kernel_launches),
                pci_count: self.host.pci_count.saturating_sub(base.host.pci_count),
                pci_cycles: self.host.pci_cycles.saturating_sub(base.host.pci_cycles),
                kernel_cycles: self
                    .host
                    .kernel_cycles
                    .saturating_sub(base.host.kernel_cycles),
                h2d_bytes: self.host.h2d_bytes.saturating_sub(base.host.h2d_bytes),
                d2h_bytes: self.host.d2h_bytes.saturating_sub(base.host.d2h_bytes),
                p2p_sends: self.host.p2p_sends.saturating_sub(base.host.p2p_sends),
                p2p_recvs: self.host.p2p_recvs.saturating_sub(base.host.p2p_recvs),
                p2p_bytes_out: self
                    .host
                    .p2p_bytes_out
                    .saturating_sub(base.host.p2p_bytes_out),
                p2p_bytes_in: self
                    .host
                    .p2p_bytes_in
                    .saturating_sub(base.host.p2p_bytes_in),
                p2p_cycles: self.host.p2p_cycles.saturating_sub(base.host.p2p_cycles),
            },
            sm: self.sm.delta_since(&base.sm),
            l1: delta_cache(&self.l1, &base.l1),
            l2: delta_cache(&self.l2, &base.l2),
            dram: DramStats {
                requests: self.dram.requests.saturating_sub(base.dram.requests),
                row_hits: self.dram.row_hits.saturating_sub(base.dram.row_hits),
                data_cycles: self.dram.data_cycles.saturating_sub(base.dram.data_cycles),
                active_cycles: self
                    .dram
                    .active_cycles
                    .saturating_sub(base.dram.active_cycles),
                rejected: self.dram.rejected.saturating_sub(base.dram.rejected),
            },
            icnt_req: delta_icnt(&self.icnt_req, &base.icnt_req),
            icnt_rep: delta_icnt(&self.icnt_rep, &base.icnt_rep),
        }
    }
}

fn delta_cache(now: &CacheStats, base: &CacheStats) -> CacheStats {
    CacheStats {
        read_access: now.read_access.saturating_sub(base.read_access),
        read_hit: now.read_hit.saturating_sub(base.read_hit),
        write_access: now.write_access.saturating_sub(base.write_access),
        write_hit: now.write_hit.saturating_sub(base.write_hit),
        mshr_merged: now.mshr_merged.saturating_sub(base.mshr_merged),
        reservation_fails: now.reservation_fails.saturating_sub(base.reservation_fails),
        writebacks: now.writebacks.saturating_sub(base.writebacks),
    }
}

fn merge_icnt(into: &mut IcntStats, from: &IcntStats) {
    into.packets += from.packets;
    into.flits += from.flits;
    into.total_latency += from.total_latency;
    into.queueing += from.queueing;
}

fn delta_icnt(now: &IcntStats, base: &IcntStats) -> IcntStats {
    IcntStats {
        packets: now.packets.saturating_sub(base.packets),
        flits: now.flits.saturating_sub(base.flits),
        total_latency: now.total_latency.saturating_sub(base.total_latency),
        queueing: now.queueing.saturating_sub(base.queueing),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_averages() {
        let h = HostStats {
            kernel_launches: 4,
            pci_count: 2,
            pci_cycles: 100,
            kernel_cycles: 400,
            ..Default::default()
        };
        assert_eq!(h.avg_kernel_cycles(), 100.0);
        assert_eq!(h.avg_pci_cycles(), 50.0);
        assert_eq!(HostStats::default().avg_pci_cycles(), 0.0);
    }

    #[test]
    fn delta_since_is_windowed_and_saturating() {
        let mut base = RunStats::default();
        base.host.pci_count = 2;
        base.sm.issued = 100;
        base.l1.read_access = 10;
        base.dram.requests = 4;
        base.icnt_req.packets = 7;
        let mut now = base.clone();
        now.host.pci_count = 5;
        now.sm.issued = 260;
        now.l1.read_access = 25;
        now.dram.requests = 9;
        now.icnt_req.packets = 11;
        let d = now.delta_since(&base);
        assert_eq!(d.host.pci_count, 3);
        assert_eq!(d.sm.issued, 160);
        assert_eq!(d.l1.read_access, 15);
        assert_eq!(d.dram.requests, 5);
        assert_eq!(d.icnt_req.packets, 4);
        // A reset between snapshots saturates to zero instead of wrapping.
        let z = RunStats::default().delta_since(&base);
        assert_eq!(z.sm.issued, 0);
        assert_eq!(z.host.pci_count, 0);
    }

    #[test]
    fn run_stats_derived_metrics() {
        let mut r = RunStats::default();
        r.host.kernel_cycles = 1000;
        r.host.pci_cycles = 500;
        r.sm.issued = 2000;
        assert_eq!(r.ipc(), 2.0);
        assert_eq!(r.total_cycles(), 1500);
        assert!((r.seconds(1.5) - 1e-6).abs() < 1e-12);
    }
}
