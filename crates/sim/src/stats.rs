//! Aggregated run statistics across the whole GPU plus the host model.

use ggpu_icnt::IcntStats;
use ggpu_mem::{CacheStats, DramStats};
use ggpu_sm::SmStats;

/// Host-side activity counters (the Figure 4 data).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HostStats {
    /// Host kernel launches (`<<<>>>` invocations).
    pub kernel_launches: u64,
    /// `cudaMemcpy` calls (PCI transactions).
    pub pci_count: u64,
    /// Cycles spent in PCI transfers.
    pub pci_cycles: u64,
    /// Cycles spent executing kernels (inside `synchronize`).
    pub kernel_cycles: u64,
    /// Host→device bytes moved.
    pub h2d_bytes: u64,
    /// Device→host bytes moved.
    pub d2h_bytes: u64,
}

impl HostStats {
    /// Average kernel time per launch in cycles.
    pub fn avg_kernel_cycles(&self) -> f64 {
        if self.kernel_launches == 0 {
            0.0
        } else {
            self.kernel_cycles as f64 / self.kernel_launches as f64
        }
    }

    /// Average PCI time per transfer in cycles.
    pub fn avg_pci_cycles(&self) -> f64 {
        if self.pci_count == 0 {
            0.0
        } else {
            self.pci_cycles as f64 / self.pci_count as f64
        }
    }
}

/// Snapshot of every counter in the machine after a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Host-side counters.
    pub host: HostStats,
    /// Merged SM counters (instruction mix, occupancy, stalls, ...).
    pub sm: SmStats,
    /// Merged L1 data-cache counters across SMs.
    pub l1: CacheStats,
    /// Merged L2 counters across partitions.
    pub l2: CacheStats,
    /// Merged DRAM counters across channels.
    pub dram: DramStats,
    /// Request-network counters.
    pub icnt_req: IcntStats,
    /// Reply-network counters.
    pub icnt_rep: IcntStats,
}

impl RunStats {
    /// Whole-GPU instructions per cycle over kernel-execution time.
    pub fn ipc(&self) -> f64 {
        if self.host.kernel_cycles == 0 {
            0.0
        } else {
            self.sm.issued as f64 / self.host.kernel_cycles as f64
        }
    }

    /// DRAM utilization over kernel cycles (Figure 18).
    pub fn dram_utilization(&self) -> f64 {
        self.dram.utilization(self.host.kernel_cycles)
    }

    /// End-to-end cycles (kernel + PCI).
    pub fn total_cycles(&self) -> u64 {
        self.host.kernel_cycles + self.host.pci_cycles
    }

    /// Convert cycles to seconds at `clock_ghz`.
    pub fn seconds(&self, clock_ghz: f64) -> f64 {
        self.total_cycles() as f64 / (clock_ghz * 1e9)
    }

    /// Merge two cache stats (helper for aggregation).
    pub(crate) fn merge_cache(into: &mut CacheStats, from: &CacheStats) {
        into.read_access += from.read_access;
        into.read_hit += from.read_hit;
        into.write_access += from.write_access;
        into.write_hit += from.write_hit;
        into.mshr_merged += from.mshr_merged;
        into.reservation_fails += from.reservation_fails;
        into.writebacks += from.writebacks;
    }

    /// Merge two DRAM stats (helper for aggregation).
    pub(crate) fn merge_dram(into: &mut DramStats, from: &DramStats) {
        into.requests += from.requests;
        into.row_hits += from.row_hits;
        into.data_cycles += from.data_cycles;
        into.active_cycles += from.active_cycles;
        into.rejected += from.rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_averages() {
        let h = HostStats {
            kernel_launches: 4,
            pci_count: 2,
            pci_cycles: 100,
            kernel_cycles: 400,
            ..Default::default()
        };
        assert_eq!(h.avg_kernel_cycles(), 100.0);
        assert_eq!(h.avg_pci_cycles(), 50.0);
        assert_eq!(HostStats::default().avg_pci_cycles(), 0.0);
    }

    #[test]
    fn run_stats_derived_metrics() {
        let mut r = RunStats::default();
        r.host.kernel_cycles = 1000;
        r.host.pci_cycles = 500;
        r.sm.issued = 2000;
        assert_eq!(r.ipc(), 2.0);
        assert_eq!(r.total_cycles(), 1500);
        assert!((r.seconds(1.5) - 1e-6).abs() < 1e-12);
    }
}
