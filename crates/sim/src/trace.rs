//! Structured event trace: typed device events, pluggable sinks, and a
//! Chrome-trace (`chrome://tracing` / Perfetto) JSON writer.
//!
//! Tracing is off by default. Enable the built-in in-memory buffer with
//! [`crate::GpuConfig::trace`], or install any custom [`TraceSink`] via
//! [`crate::Gpu::set_trace_sink`]. Every emission site in the device is
//! guarded by a single "is a sink installed?" branch, so the disabled path
//! costs one predictable branch and no allocation.

use std::fmt;

use ggpu_isa::FaultKind;

use crate::json::{escape, num, JsonWriter};

/// Direction of a `cudaMemcpy` transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDir {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
    /// Device to device across the node fabric (peer-to-peer).
    P2P,
}

impl fmt::Display for CopyDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CopyDir::H2D => "h2d",
            CopyDir::D2H => "d2h",
            CopyDir::P2P => "p2p",
        })
    }
}

/// What happened (the event taxonomy; see DESIGN.md §Observability).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A grid was enqueued from the host (`<<<>>>`).
    KernelLaunch {
        /// Grid handle (unique per launch).
        grid: u64,
        /// Kernel name.
        kernel: String,
        /// CTAs in the grid.
        ctas: u64,
        /// Threads per CTA.
        threads_per_cta: u32,
        /// Owning stream (0 is the default stream).
        stream: usize,
    },
    /// A device-side (CDP) child launch was enqueued.
    CdpEnqueue {
        /// Child grid handle.
        grid: u64,
        /// Kernel name.
        kernel: String,
        /// Parent grid handle.
        parent: u64,
        /// Nesting depth of the child (parent depth + 1).
        depth: u32,
        /// CTAs in the child grid.
        ctas: u64,
        /// Threads per CTA.
        threads_per_cta: u32,
        /// Owning stream (inherited from the parent grid).
        stream: usize,
    },
    /// A grid dispatched its first CTA (launch overhead elapsed).
    KernelStart {
        /// Grid handle.
        grid: u64,
        /// Owning stream.
        stream: usize,
    },
    /// A grid's last CTA completed.
    KernelRetire {
        /// Grid handle.
        grid: u64,
        /// Owning stream.
        stream: usize,
    },
    /// A CDP child retired and unparked its parent's pending-children count.
    CdpDrain {
        /// Parent grid handle.
        parent: u64,
        /// Child grid handle that drained.
        child: u64,
    },
    /// A `cudaMemcpy`-style PCIe transfer.
    Memcpy {
        /// Transfer direction.
        dir: CopyDir,
        /// Bytes moved.
        bytes: u64,
        /// Modelled PCIe cycles the transfer took.
        cycles: u64,
    },
    /// An L2 line was filled from DRAM (emitted only when
    /// [`crate::GpuConfig::trace_cache_fills`] is set — high frequency).
    CacheFill {
        /// Memory partition of the filled slice.
        partition: u64,
        /// Byte address of the filled line.
        addr: u64,
    },
    /// A guest fault poisoned its owning stream (device-wide on stream 0).
    Fault {
        /// Architectural fault class.
        kind: FaultKind,
        /// Name of the faulting kernel.
        kernel: String,
        /// Stream the fault landed on (0 is device-wide).
        stream: usize,
    },
    /// The forward-progress watchdog fired.
    Deadlock {
        /// Consecutive cycles without forward progress.
        stalled_for: u64,
        /// Stream of the grid that was active when the watchdog fired.
        stream: usize,
    },
}

impl TraceEventKind {
    /// Short machine-readable tag for this event kind.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEventKind::KernelLaunch { .. } => "kernel_launch",
            TraceEventKind::CdpEnqueue { .. } => "cdp_enqueue",
            TraceEventKind::KernelStart { .. } => "kernel_start",
            TraceEventKind::KernelRetire { .. } => "kernel_retire",
            TraceEventKind::CdpDrain { .. } => "cdp_drain",
            TraceEventKind::Memcpy { .. } => "memcpy",
            TraceEventKind::CacheFill { .. } => "cache_fill",
            TraceEventKind::Fault { .. } => "fault",
            TraceEventKind::Deadlock { .. } => "deadlock",
        }
    }

    /// Whether this event records a terminal device error. Terminal events
    /// bypass the trace-buffer capacity so a truncated trace still ends
    /// with its fault.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            TraceEventKind::Fault { .. } | TraceEventKind::Deadlock { .. }
        )
    }
}

/// One timestamped device event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Device cycle at which the event was recorded.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Serialize as a standalone JSON object (the structured export form).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.u64("cycle", self.cycle);
        w.str("event", self.kind.tag());
        match &self.kind {
            TraceEventKind::KernelLaunch {
                grid,
                kernel,
                ctas,
                threads_per_cta,
                stream,
            } => {
                w.u64("grid", *grid)
                    .str("kernel", kernel)
                    .u64("ctas", *ctas)
                    .u64("threads_per_cta", *threads_per_cta as u64)
                    .u64("stream", *stream as u64);
            }
            TraceEventKind::CdpEnqueue {
                grid,
                kernel,
                parent,
                depth,
                ctas,
                threads_per_cta,
                stream,
            } => {
                w.u64("grid", *grid)
                    .str("kernel", kernel)
                    .u64("parent", *parent)
                    .u64("depth", *depth as u64)
                    .u64("ctas", *ctas)
                    .u64("threads_per_cta", *threads_per_cta as u64)
                    .u64("stream", *stream as u64);
            }
            TraceEventKind::KernelStart { grid, stream }
            | TraceEventKind::KernelRetire { grid, stream } => {
                w.u64("grid", *grid).u64("stream", *stream as u64);
            }
            TraceEventKind::CdpDrain { parent, child } => {
                w.u64("parent", *parent).u64("child", *child);
            }
            TraceEventKind::Memcpy { dir, bytes, cycles } => {
                w.str("dir", &dir.to_string())
                    .u64("bytes", *bytes)
                    .u64("cycles", *cycles);
            }
            TraceEventKind::CacheFill { partition, addr } => {
                w.u64("partition", *partition).u64("addr", *addr);
            }
            TraceEventKind::Fault {
                kind,
                kernel,
                stream,
            } => {
                w.str("kind", &kind.to_string())
                    .str("kernel", kernel)
                    .u64("stream", *stream as u64);
            }
            TraceEventKind::Deadlock {
                stalled_for,
                stream,
            } => {
                w.u64("stalled_for", *stalled_for)
                    .u64("stream", *stream as u64);
            }
        }
        w.end_obj();
        w.finish()
    }
}

/// A consumer of trace events.
///
/// Implementations must be cheap per event; the device calls
/// [`TraceSink::event`] from the cycle loop whenever a sink is installed.
/// Sinks must be `Send` so a whole [`crate::Gpu`] (including its sink) can
/// move to a worker thread — the node engine simulates devices on parallel
/// host threads.
pub trait TraceSink: fmt::Debug + Send {
    /// Observe one event.
    fn event(&mut self, ev: &TraceEvent);
}

/// The built-in in-memory sink: a capacity-bounded event log.
///
/// When the buffer is full, further events are dropped (and counted) —
/// except terminal fault/deadlock events, which are always retained so a
/// truncated timeline still ends with its fault.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events dropped on the floor after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Take the recorded events, leaving the buffer empty.
    pub fn take(&mut self) -> (Vec<TraceEvent>, u64) {
        (
            std::mem::take(&mut self.events),
            std::mem::take(&mut self.dropped),
        )
    }
}

impl TraceSink for TraceBuffer {
    fn event(&mut self, ev: &TraceEvent) {
        if self.events.len() < self.capacity || ev.kind.is_terminal() {
            self.events.push(ev.clone());
        } else {
            self.dropped += 1;
        }
    }
}

/// Convert device cycles to Chrome-trace microseconds at `clock_ghz`.
fn cycles_to_us(cycles: u64, clock_ghz: f64) -> f64 {
    cycles as f64 / (clock_ghz * 1000.0)
}

#[allow(clippy::too_many_arguments)]
fn chrome_event(
    out: &mut Vec<String>,
    name: &str,
    ph: char,
    ts_us: f64,
    dur_us: Option<f64>,
    pid: usize,
    tid: u64,
    args: &[(&str, String)],
) {
    let mut s = String::new();
    s.push_str(&format!(
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
        escape(name),
        ph,
        num(ts_us),
        pid,
        tid
    ));
    if let Some(d) = dur_us {
        s.push_str(&format!(",\"dur\":{}", num(d.max(0.001))));
    }
    if ph == 'i' {
        // Instant events: global scope so Perfetto draws a full-height line.
        s.push_str(",\"s\":\"g\"");
    }
    if !args.is_empty() {
        s.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", escape(k), v));
        }
        s.push('}');
    }
    s.push('}');
    out.push(s);
}

/// Emit Chrome-trace events for one device's event log under process id
/// `pid`, appending serialized event objects to `out`.
///
/// Track (tid) layout inside the process: tid 0 is the host (memcpy)
/// track, tid `1 + depth` holds kernels at CDP nesting `depth`, so parent
/// and child launches land on adjacent rows. Faults and watchdog fires are
/// instant events.
pub fn chrome_trace_events(
    pid: usize,
    process_name: &str,
    events: &[TraceEvent],
    clock_ghz: f64,
    out: &mut Vec<String>,
) {
    chrome_event(
        out,
        "process_name",
        'M',
        0.0,
        None,
        pid,
        0,
        &[("name", format!("\"{}\"", escape(process_name)))],
    );
    chrome_event(
        out,
        "thread_name",
        'M',
        0.0,
        None,
        pid,
        0,
        &[("name", "\"host (memcpy)\"".to_string())],
    );

    // Launch metadata and start cycles, keyed by grid handle.
    struct Open {
        name: String,
        depth: u32,
        ctas: u64,
        threads: u32,
        start: Option<u64>,
        launch_cycle: u64,
        stream: usize,
    }
    let mut open: Vec<(u64, Open)> = Vec::new();
    let find = |open: &mut Vec<(u64, Open)>, grid: u64| -> Option<usize> {
        open.iter().position(|(g, _)| *g == grid)
    };
    let mut max_depth = 0u32;

    for ev in events {
        let ts = cycles_to_us(ev.cycle, clock_ghz);
        match &ev.kind {
            TraceEventKind::KernelLaunch {
                grid,
                kernel,
                ctas,
                threads_per_cta,
                stream,
            } => {
                open.push((
                    *grid,
                    Open {
                        name: kernel.clone(),
                        depth: 0,
                        ctas: *ctas,
                        threads: *threads_per_cta,
                        start: None,
                        launch_cycle: ev.cycle,
                        stream: *stream,
                    },
                ));
            }
            TraceEventKind::CdpEnqueue {
                grid,
                kernel,
                depth,
                ctas,
                threads_per_cta,
                stream,
                ..
            } => {
                max_depth = max_depth.max(*depth);
                open.push((
                    *grid,
                    Open {
                        name: kernel.clone(),
                        depth: *depth,
                        ctas: *ctas,
                        threads: *threads_per_cta,
                        start: None,
                        launch_cycle: ev.cycle,
                        stream: *stream,
                    },
                ));
            }
            TraceEventKind::KernelStart { grid, .. } => {
                if let Some(i) = find(&mut open, *grid) {
                    open[i].1.start = Some(ev.cycle);
                }
            }
            TraceEventKind::KernelRetire { grid, .. } => {
                if let Some(i) = find(&mut open, *grid) {
                    let (g, o) = open.remove(i);
                    let start = o.start.unwrap_or(o.launch_cycle);
                    chrome_event(
                        out,
                        &format!("{} #{g}", o.name),
                        'X',
                        cycles_to_us(start, clock_ghz),
                        Some(cycles_to_us(ev.cycle.saturating_sub(start), clock_ghz)),
                        pid,
                        1 + o.depth as u64,
                        &[
                            ("grid", format!("{g}")),
                            ("ctas", format!("{}", o.ctas)),
                            ("threads_per_cta", format!("{}", o.threads)),
                            ("depth", format!("{}", o.depth)),
                            ("stream", format!("{}", o.stream)),
                            ("launch_cycle", format!("{}", o.launch_cycle)),
                            ("retire_cycle", format!("{}", ev.cycle)),
                        ],
                    );
                }
            }
            TraceEventKind::CdpDrain { .. } => {}
            TraceEventKind::Memcpy { dir, bytes, cycles } => {
                chrome_event(
                    out,
                    &format!("memcpy_{dir}"),
                    'X',
                    ts,
                    Some(cycles_to_us(*cycles, clock_ghz)),
                    pid,
                    0,
                    &[("bytes", format!("{bytes}"))],
                );
            }
            TraceEventKind::CacheFill { partition, addr } => {
                chrome_event(
                    out,
                    "l2_fill",
                    'i',
                    ts,
                    None,
                    pid,
                    0,
                    &[
                        ("partition", format!("{partition}")),
                        ("addr", format!("{addr}")),
                    ],
                );
            }
            TraceEventKind::Fault {
                kind,
                kernel,
                stream,
            } => {
                chrome_event(
                    out,
                    &format!("FAULT: {kind}"),
                    'i',
                    ts,
                    None,
                    pid,
                    0,
                    &[
                        ("kernel", format!("\"{}\"", escape(kernel))),
                        ("stream", format!("{stream}")),
                    ],
                );
            }
            TraceEventKind::Deadlock {
                stalled_for,
                stream,
            } => {
                chrome_event(
                    out,
                    "DEADLOCK (watchdog)",
                    'i',
                    ts,
                    None,
                    pid,
                    0,
                    &[
                        ("stalled_for", format!("{stalled_for}")),
                        ("stream", format!("{stream}")),
                    ],
                );
            }
        }
    }

    // A grid still open at the end of the log (fault/deadlock killed it)
    // renders as an instant so the timeline shows where it got to.
    for (g, o) in open {
        chrome_event(
            out,
            &format!("{} #{g} (unfinished)", o.name),
            'i',
            cycles_to_us(o.start.unwrap_or(o.launch_cycle), clock_ghz),
            None,
            pid,
            1 + o.depth as u64,
            &[("grid", format!("{g}"))],
        );
    }

    for depth in 0..=max_depth {
        chrome_event(
            out,
            "thread_name",
            'M',
            0.0,
            None,
            pid,
            1 + depth as u64,
            &[(
                "name",
                format!(
                    "\"kernels depth {depth}{}\"",
                    if depth == 0 { " (host)" } else { " (CDP)" }
                ),
            )],
        );
    }
}

/// Render one or more `(label, events)` logs as a complete Chrome-trace
/// JSON document (one Perfetto "process" per log). Load the result at
/// <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn chrome_trace_json(logs: &[(String, &[TraceEvent])], clock_ghz: f64) -> String {
    let mut events = Vec::new();
    for (pid, (label, log)) in logs.iter().enumerate() {
        chrome_trace_events(pid, label, log, clock_ghz, &mut events);
    }
    let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    s.push_str(&events.join(","));
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn ev(cycle: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { cycle, kind }
    }

    #[test]
    fn buffer_caps_and_keeps_terminal_events() {
        let mut b = TraceBuffer::new(2);
        for i in 0..5 {
            b.event(&ev(i, TraceEventKind::KernelStart { grid: i, stream: 0 }));
        }
        b.event(&ev(
            9,
            TraceEventKind::Deadlock {
                stalled_for: 100,
                stream: 0,
            },
        ));
        assert_eq!(b.events().len(), 3);
        assert_eq!(b.dropped(), 3);
        assert!(b.events().last().expect("non-empty").kind.is_terminal());
    }

    #[test]
    fn event_json_round_trips() {
        let e = ev(
            77,
            TraceEventKind::CdpEnqueue {
                grid: 3,
                kernel: "child \"k\"".to_string(),
                parent: 1,
                depth: 1,
                ctas: 2,
                threads_per_cta: 32,
                stream: 4,
            },
        );
        let v = Json::parse(&e.to_json()).expect("well-formed");
        assert_eq!(v.get("cycle").and_then(Json::as_u64), Some(77));
        assert_eq!(v.get("event").and_then(Json::as_str), Some("cdp_enqueue"));
        assert_eq!(v.get("kernel").and_then(Json::as_str), Some("child \"k\""));
        assert_eq!(v.get("parent").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("stream").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn chrome_trace_pairs_launch_and_retire() {
        let log = vec![
            ev(
                0,
                TraceEventKind::KernelLaunch {
                    grid: 1,
                    kernel: "k".to_string(),
                    ctas: 4,
                    threads_per_cta: 64,
                    stream: 0,
                },
            ),
            ev(100, TraceEventKind::KernelStart { grid: 1, stream: 0 }),
            ev(
                150,
                TraceEventKind::Memcpy {
                    dir: CopyDir::H2D,
                    bytes: 64,
                    cycles: 10,
                },
            ),
            ev(900, TraceEventKind::KernelRetire { grid: 1, stream: 0 }),
        ];
        let json = chrome_trace_json(&[("dev".to_string(), log.as_slice())], 1.0);
        let v = Json::parse(&json).expect("well-formed chrome trace");
        let evs = v
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents");
        let kernel = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("k #1"))
            .expect("kernel slice present");
        assert_eq!(kernel.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(kernel.get("ts").and_then(Json::as_f64), Some(0.1));
        assert_eq!(kernel.get("dur").and_then(Json::as_f64), Some(0.8));
        assert!(evs
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("memcpy_h2d")));
    }

    #[test]
    fn chrome_trace_marks_unfinished_grids_and_faults() {
        let log = vec![
            ev(
                0,
                TraceEventKind::KernelLaunch {
                    grid: 1,
                    kernel: "bad".to_string(),
                    ctas: 1,
                    threads_per_cta: 32,
                    stream: 2,
                },
            ),
            ev(10, TraceEventKind::KernelStart { grid: 1, stream: 2 }),
            ev(
                50,
                TraceEventKind::Fault {
                    kind: ggpu_isa::FaultKind::IllegalAddress,
                    kernel: "bad".to_string(),
                    stream: 2,
                },
            ),
        ];
        let json = chrome_trace_json(&[("dev".to_string(), log.as_slice())], 1.5);
        let v = Json::parse(&json).expect("well-formed");
        let evs = v.get("traceEvents").and_then(Json::as_arr).expect("arr");
        assert!(evs.iter().any(|e| {
            e.get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| n.starts_with("FAULT:"))
        }));
        assert!(evs.iter().any(|e| {
            e.get("name")
                .and_then(Json::as_str)
                .is_some_and(|n| n.contains("unfinished"))
        }));
    }
}
