//! Memory-access coalescing and shared-memory bank-conflict analysis.

use ggpu_isa::WARP_SIZE;
use ggpu_mem::LINE_BYTES;

use crate::warp::lanes;

/// Number of shared-memory banks (4-byte interleave), as on real SMs.
pub const SMEM_BANKS: usize = 32;

/// Coalesce the active lanes' byte addresses into the set of distinct
/// 128-byte line transactions they touch, written into `out` (deduplicated,
/// order of first touch).
///
/// A fully coalesced warp access (32 consecutive 4-byte words) produces one
/// transaction; a strided access can produce up to 32.
pub fn coalesce_lines(addrs: &[u64; WARP_SIZE], mask: u32, width: u64, out: &mut Vec<u64>) {
    out.clear();
    for lane in lanes(mask) {
        let first = addrs[lane] / LINE_BYTES;
        let last = (addrs[lane] + width - 1) / LINE_BYTES;
        for line in first..=last {
            if !out.contains(&line) {
                out.push(line);
            }
        }
    }
}

/// Shared-memory bank-conflict degree: the maximum number of *distinct*
/// words that map to the same bank across the active lanes. Lanes reading
/// the same word broadcast (no conflict). The access serializes over
/// `degree` cycles; a conflict-free access has degree 1.
pub fn bank_conflict_degree(addrs: &[u64; WARP_SIZE], mask: u32) -> u32 {
    let mut per_bank: [Vec<u64>; SMEM_BANKS] = Default::default();
    for lane in lanes(mask) {
        let word = addrs[lane] / 4;
        let bank = (word % SMEM_BANKS as u64) as usize;
        if !per_bank[bank].contains(&word) {
            per_bank[bank].push(word);
        }
    }
    per_bank
        .iter()
        .map(|v| v.len() as u32)
        .max()
        .unwrap_or(0)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warp::FULL_MASK;

    fn seq_addrs(base: u64, stride: u64) -> [u64; WARP_SIZE] {
        let mut a = [0; WARP_SIZE];
        for (i, slot) in a.iter_mut().enumerate() {
            *slot = base + i as u64 * stride;
        }
        a
    }

    #[test]
    fn fully_coalesced_is_one_line() {
        let addrs = seq_addrs(0, 4);
        let mut out = Vec::new();
        coalesce_lines(&addrs, FULL_MASK, 4, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn stride_128_is_32_lines() {
        let addrs = seq_addrs(0, 128);
        let mut out = Vec::new();
        coalesce_lines(&addrs, FULL_MASK, 4, &mut out);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn inactive_lanes_ignored() {
        let addrs = seq_addrs(0, 128);
        let mut out = Vec::new();
        coalesce_lines(&addrs, 0b11, 4, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut addrs = [0u64; WARP_SIZE];
        addrs[0] = 124; // 8-byte access crosses the 128B boundary
        let mut out = Vec::new();
        coalesce_lines(&addrs, 0b1, 8, &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn conflict_free_unit_stride() {
        let addrs = seq_addrs(0, 4);
        assert_eq!(bank_conflict_degree(&addrs, FULL_MASK), 1);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        let addrs = [64u64; WARP_SIZE];
        assert_eq!(bank_conflict_degree(&addrs, FULL_MASK), 1);
    }

    #[test]
    fn stride_two_words_gives_two_way_conflict() {
        let addrs = seq_addrs(0, 8); // every other bank, two words per bank
        assert_eq!(bank_conflict_degree(&addrs, FULL_MASK), 2);
    }

    #[test]
    fn stride_32_words_is_fully_serialized() {
        let addrs = seq_addrs(0, 128); // all lanes hit bank 0
        assert_eq!(bank_conflict_degree(&addrs, FULL_MASK), 32);
    }

    #[test]
    fn empty_mask_degree_one() {
        let addrs = seq_addrs(0, 4);
        assert_eq!(bank_conflict_degree(&addrs, 0), 1);
    }
}
