//! Per-SM configuration: resource limits (Table I), scheduler policy, and
//! execution latencies.

use ggpu_mem::{CacheConfig, WritePolicy};

/// Warp scheduler policies evaluated in Figure 19 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPolicy {
    /// Loose round-robin (Accel-Sim default / paper baseline).
    Lrr,
    /// Greedy-then-oldest: stick with one warp until it stalls, then the
    /// oldest ready warp.
    Gto,
    /// Oldest-first.
    Old,
    /// Two-level: a small active set served round-robin; warps hitting long
    /// latency are demoted and replaced from the pending set.
    TwoLevel,
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedPolicy::Lrr => "LRR",
            SchedPolicy::Gto => "GTO",
            SchedPolicy::Old => "OLD",
            SchedPolicy::TwoLevel => "2LV",
        };
        f.write_str(s)
    }
}

/// Pipeline latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Integer ALU result latency.
    pub int: u64,
    /// f32 result latency.
    pub fp32: u64,
    /// f64 result latency (consumer GPUs run FP64 at reduced rate).
    pub fp64: u64,
    /// Special-function-unit latency.
    pub sfu: u64,
    /// Shared-memory access latency (plus bank-conflict serialization).
    pub smem: u64,
    /// Constant-cache hit latency.
    pub cmem_hit: u64,
    /// Constant-cache miss penalty (fixed; constants are tiny).
    pub cmem_miss: u64,
    /// Parameter-buffer read latency.
    pub param: u64,
    /// L1 hit latency for global/local/texture loads.
    pub l1_hit: u64,
    /// Cycles after a branch issues before the warp may issue again
    /// (control hazard window).
    pub branch: u64,
    /// Minimum cycles between issues from the same warp after an f64 op
    /// (throughput penalty).
    pub f64_interval: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            int: 4,
            fp32: 4,
            fp64: 32,
            sfu: 16,
            smem: 24,
            cmem_hit: 8,
            cmem_miss: 150,
            param: 2,
            l1_hit: 32,
            branch: 6,
            f64_interval: 8,
        }
    }
}

/// Full per-SM configuration.
///
/// The defaults are the RTX 3070 baseline of Table I: 32 CTAs/core, 1536
/// threads/core, 65536 registers/core, 100KB shared memory, 128KB L1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmConfig {
    /// Maximum concurrent CTAs.
    pub max_ctas: u32,
    /// Maximum concurrent threads.
    pub max_threads: u32,
    /// Register-file size in 32-bit registers.
    pub registers: u32,
    /// Shared-memory capacity in bytes.
    pub smem_bytes: u32,
    /// Number of warp schedulers (issue slots per cycle).
    pub schedulers: u32,
    /// Scheduling policy.
    pub policy: SchedPolicy,
    /// Active-set size for the two-level scheduler.
    pub two_level_active: u32,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Constant cache geometry.
    pub const_cache: CacheConfig,
    /// Texture cache geometry.
    pub tex_cache: CacheConfig,
    /// Pipeline latencies.
    pub lat: LatencyConfig,
    /// When set, every off-chip access completes at L1-hit latency with no
    /// traffic (the paper's Figure 15 "perfect memory").
    pub perfect_memory: bool,
    /// Interleave per-thread local memory at 8-byte granularity per warp
    /// (real-GPU layout, the default). Disabling it gives each thread a
    /// contiguous private arena — an ablation that destroys local-memory
    /// coalescing and shows why the interleaved layout matters.
    pub interleave_local: bool,
    /// Treat a barrier reached by a divergent warp subset as a guest fault
    /// instead of parking the partial warp. Off by default: real GPUs leave
    /// this undefined rather than trapping, and well-formed suite kernels
    /// only hit barriers fully converged, but turning it on catches the
    /// classic `__syncthreads()`-under-divergence bug deterministically.
    pub trap_divergent_barrier: bool,
    /// Keep a per-PC attribution table ([`crate::PcTable`]) charging issues,
    /// stalls, L1 traffic, divergence and replays to individual
    /// instructions. Off by default; when off the SM allocates no table and
    /// pays exactly one branch per recording site.
    pub attribution: bool,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            max_ctas: 32,
            max_threads: 1536,
            registers: 65536,
            smem_bytes: 100 * 1024,
            schedulers: 4,
            policy: SchedPolicy::Lrr,
            two_level_active: 8,
            l1: CacheConfig::new(128 * 1024, 256, WritePolicy::WriteThrough),
            const_cache: CacheConfig::new(64 * 1024, 256, WritePolicy::WriteThrough),
            tex_cache: CacheConfig::new(128 * 1024, 64, WritePolicy::WriteThrough),
            lat: LatencyConfig::default(),
            perfect_memory: false,
            interleave_local: true,
            trap_divergent_barrier: false,
            attribution: false,
        }
    }
}

impl SmConfig {
    /// How many CTAs of a kernel fit concurrently on this SM, limited by
    /// CTA slots, threads, registers and shared memory — the standard CUDA
    /// occupancy computation (drives Table III's "CTA/CORE" column and
    /// Figure 6).
    pub fn max_resident_ctas(
        &self,
        threads_per_cta: u32,
        regs_per_thread: u32,
        smem_per_cta: u32,
    ) -> u32 {
        if threads_per_cta == 0 {
            return 0;
        }
        let by_slots = self.max_ctas;
        let by_threads = self.max_threads / threads_per_cta;
        let by_regs = self
            .registers
            .checked_div(regs_per_thread * threads_per_cta)
            .unwrap_or(u32::MAX);
        let by_smem = self
            .smem_bytes
            .checked_div(smem_per_cta)
            .unwrap_or(u32::MAX);
        by_slots.min(by_threads).min(by_regs).min(by_smem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_limits() {
        let c = SmConfig::default();
        // Thread-limited: 1536/128 = 12.
        assert_eq!(c.max_resident_ctas(128, 0, 0), 12);
        // Register-limited: 65536/(64*128) = 8.
        assert_eq!(c.max_resident_ctas(128, 64, 0), 8);
        // Smem-limited: 102400/40960 = 2.
        assert_eq!(c.max_resident_ctas(128, 0, 40 * 1024), 2);
        // Slot-limited: tiny CTAs cap at 32.
        assert_eq!(c.max_resident_ctas(32, 1, 0), 32);
        // Degenerate.
        assert_eq!(c.max_resident_ctas(0, 0, 0), 0);
    }

    #[test]
    fn policy_display() {
        assert_eq!(SchedPolicy::Lrr.to_string(), "LRR");
        assert_eq!(SchedPolicy::TwoLevel.to_string(), "2LV");
    }
}
