//! The streaming-multiprocessor core: CTA slots, warp scheduling, functional
//! execution of the ISA, memory coalescing into off-chip requests, and
//! per-cycle stall accounting.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ggpu_isa::{
    AtomOp, CvtKind, FaultKind, Instr, Kernel, KernelId, LaunchDims, Operand, Program, Reg, Space,
    SpecialReg, Width, WARP_SIZE,
};
use ggpu_mem::{Cache, CacheOutcome, CacheStats, LINE_BYTES};

use crate::coalesce::{bank_conflict_degree, coalesce_lines};
use crate::config::{SchedPolicy, SmConfig};
use crate::stats::{SmStats, StallReason};
use crate::warp::{lane_mask, lanes, WaitKind, Warp, WarpBlock};

/// Functional backing store for global/local/texture memory, provided by the
/// device (the SM only models timing for these spaces).
pub trait GlobalMem {
    /// Read `width` bytes at `addr`, zero-extended.
    fn read(&mut self, addr: u64, width: Width) -> u64;
    /// Write the low `width` bytes of `value` at `addr`.
    fn write(&mut self, addr: u64, width: Width, value: u64);
    /// Atomically apply `op`; returns the old value.
    fn atom(&mut self, op: AtomOp, addr: u64, src: u64, cas: u64) -> u64;
    /// Would an access of `width` bytes at `addr` fault?
    ///
    /// Called per lane on the raw (pre-coalescing) addresses before any
    /// functional access is performed; a `Some` answer traps the warp
    /// instead of executing it. The default accepts everything, so simple
    /// test memories need not implement bounds.
    fn check(&self, addr: u64, width: Width, store: bool) -> Option<FaultKind> {
        let _ = (addr, width, store);
        None
    }
}

/// Kind of off-chip memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read that must be answered with [`SmCore::mem_response`].
    Load,
    /// Write-through store; fire and forget.
    Store,
    /// Atomic executed at the memory partition; must be answered.
    Atomic,
}

/// An off-chip memory request emitted by [`SmCore::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// SM-local request id (echoed back in [`SmCore::mem_response`]).
    pub id: u64,
    /// 128-byte-aligned byte address.
    pub addr: u64,
    /// Request kind.
    pub kind: ReqKind,
    /// Whether this request came through the texture path.
    pub tex: bool,
}

/// A device-side child-kernel launch emitted by a CDP kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLaunch {
    /// Child kernel id within the shared [`Program`].
    pub kernel: u32,
    /// Child grid size (CTAs).
    pub grid_x: u32,
    /// Child CTA size (threads).
    pub block_x: u32,
    /// Parameters copied from the parent-provided global-memory block.
    pub params: Vec<u64>,
    /// CTA slot of the parent (for `Dsync` bookkeeping).
    pub parent_slot: usize,
    /// Grid handle of the parent (guards slot reuse on completion).
    pub parent_grid: u64,
}

/// Everything the device provides when placing a CTA on an SM.
#[derive(Debug, Clone)]
pub struct CtaConfig {
    /// Kernel to run.
    pub kernel_id: KernelId,
    /// Device-side grid-instance handle this CTA belongs to.
    pub grid_handle: u64,
    /// Linear CTA index within the grid.
    pub cta_linear: u64,
    /// Grid/CTA dimensions of the launch.
    pub dims: LaunchDims,
    /// Kernel parameters (u64 words).
    pub params: Arc<Vec<u64>>,
    /// Constant-memory image bound to the kernel.
    pub const_data: Arc<Vec<u8>>,
    /// Base of this grid's local-memory arena in global address space.
    pub local_base: u64,
    /// Bytes of local memory per thread.
    pub local_stride: u64,
}

/// Notification that a CTA has finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedCta {
    /// Grid-instance handle the CTA belonged to.
    pub grid_handle: u64,
    /// SM-local slot index that was freed.
    pub slot: usize,
}

/// A guest fault raised by a warp, carrying enough context for the device
/// to compose a CUDA-style error report.
#[derive(Debug, Clone, PartialEq)]
pub struct Trap {
    /// Fault class.
    pub kind: FaultKind,
    /// Kernel the faulting warp was running.
    pub kernel: KernelId,
    /// SM-local CTA slot the warp belonged to.
    pub slot: usize,
    /// Linear CTA index within its grid.
    pub cta_linear: u64,
    /// SM-local warp index.
    pub warp: usize,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// Lanes that faulted (memory faults) or were active (others).
    pub lane_mask: u32,
    /// Program counter of the faulting instruction.
    pub pc: usize,
    /// Disassembly of the faulting instruction.
    pub instr: String,
    /// First faulting address, for memory faults.
    pub addr: Option<u64>,
}

/// Why a resident warp is currently not retiring instructions, as reported
/// by [`SmCore::warp_report`] for deadlock diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpWait {
    /// Runnable (the scheduler simply has not picked it yet).
    Runnable,
    /// Parked at the CTA barrier; `arrived` of `running` warps are there.
    Barrier {
        /// Warps of the CTA that have reached the barrier.
        arrived: u32,
        /// Warps of the CTA still running.
        running: u32,
    },
    /// Waiting in `cudaDeviceSynchronize` on outstanding child grids.
    Dsync {
        /// Child grids the CTA is still waiting for.
        children: u32,
    },
    /// Trapped on a guest fault.
    Trapped,
    /// Waiting on outstanding memory fills.
    Memory {
        /// Pending register fills (MSHR entries this warp waits on).
        fills: u32,
    },
    /// Finished (executed `Exit`).
    Done,
}

impl fmt::Display for WarpWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarpWait::Runnable => write!(f, "runnable"),
            WarpWait::Barrier { arrived, running } => {
                write!(f, "at barrier ({arrived}/{running} warps arrived)")
            }
            WarpWait::Dsync { children } => {
                write!(
                    f,
                    "in cudaDeviceSynchronize ({children} child grids pending)"
                )
            }
            WarpWait::Trapped => write!(f, "trapped"),
            WarpWait::Memory { fills } => write!(f, "awaiting {fills} memory fills"),
            WarpWait::Done => write!(f, "done"),
        }
    }
}

/// Snapshot of one resident warp's blocked-state for the deadlock report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpReport {
    /// Device-wide SM index (provided by the caller).
    pub sm: usize,
    /// SM-local warp index.
    pub warp: usize,
    /// Kernel name.
    pub kernel: String,
    /// Linear CTA index within its grid.
    pub cta: u64,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// Current PC (`None` once done).
    pub pc: Option<usize>,
    /// What the warp is blocked on.
    pub wait: WarpWait,
}

impl fmt::Display for WarpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sm {} warp {} ({} cta {} warp-in-cta {}, pc {}): {}",
            self.sm,
            self.warp,
            self.kernel,
            self.cta,
            self.warp_in_cta,
            self.pc.map_or("-".to_string(), |p| p.to_string()),
            self.wait
        )
    }
}

/// Everything produced by one SM cycle.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Off-chip memory requests to route through the interconnect.
    pub mem_requests: Vec<MemRequest>,
    /// CDP child launches.
    pub launches: Vec<DeviceLaunch>,
    /// CTAs that completed this cycle.
    pub completed: Vec<CompletedCta>,
    /// Guest faults raised this cycle.
    pub traps: Vec<Trap>,
    /// Warp-instructions issued; accumulates across calls (the device reads
    /// it once per device cycle as a forward-progress signal and resets it).
    pub issued: u64,
}

#[derive(Debug)]
struct CtaSlot {
    cfg: CtaConfig,
    smem: Vec<u8>,
    warps: Vec<usize>,
    /// Warps not yet exited.
    running: u32,
    /// Warps currently parked at the barrier.
    barrier_count: u32,
    /// Outstanding child grids (CDP).
    children: u32,
    live: bool,
    threads: u32,
    regs: u32,
    smem_bytes: u32,
}

#[derive(Debug)]
enum RespRoute {
    LoadFill { tex: bool, line: u64 },
    Atomic { warp: usize, reg: Reg },
}

/// A single streaming multiprocessor.
///
/// The device calls [`SmCore::try_launch_cta`] to place work,
/// [`SmCore::tick`] every cycle, [`SmCore::mem_response`] when the memory
/// system answers a request, and [`SmCore::child_grid_done`] when a CDP
/// child grid drains.
#[derive(Debug)]
pub struct SmCore {
    config: SmConfig,
    program: Arc<Program>,
    slots: Vec<CtaSlot>,
    free_slots: Vec<usize>,
    warps: Vec<Option<Warp>>,
    free_warps: Vec<usize>,
    live_warps: u32,
    used_threads: u32,
    used_regs: u32,
    used_smem: u32,
    used_slots: u32,
    l1: Cache,
    cc: Cache,
    tc: Cache,
    outstanding: HashMap<u64, RespRoute>,
    waiters: HashMap<(bool, u64), Vec<(usize, Reg)>>,
    next_req_id: u64,
    age_counter: u64,
    /// Per-scheduler round-robin cursor.
    rr_cursor: Vec<usize>,
    /// Per-scheduler sticky warp for GTO.
    gto_current: Vec<Option<usize>>,
    stats: SmStats,
    /// Scratch buffers reused across cycles.
    scratch_addrs: [u64; WARP_SIZE],
    scratch_lines: Vec<u64>,
}

impl SmCore {
    /// Build an SM running kernels from `program`.
    pub fn new(config: SmConfig, program: Arc<Program>) -> Self {
        SmCore {
            l1: Cache::new(config.l1),
            cc: Cache::new(config.const_cache),
            tc: Cache::new(config.tex_cache),
            rr_cursor: vec![0; config.schedulers as usize],
            gto_current: vec![None; config.schedulers as usize],
            config,
            program,
            slots: Vec::new(),
            free_slots: Vec::new(),
            warps: Vec::new(),
            free_warps: Vec::new(),
            live_warps: 0,
            used_threads: 0,
            used_regs: 0,
            used_smem: 0,
            used_slots: 0,
            outstanding: HashMap::new(),
            waiters: HashMap::new(),
            next_req_id: 0,
            age_counter: 0,
            stats: SmStats::default(),
            scratch_addrs: [0; WARP_SIZE],
            scratch_lines: Vec::new(),
        }
    }

    /// The SM's configuration.
    pub fn config(&self) -> &SmConfig {
        &self.config
    }

    /// True when no warps are resident.
    pub fn is_idle(&self) -> bool {
        self.live_warps == 0
    }

    /// True when requests are still outstanding to the memory system.
    pub fn has_outstanding(&self) -> bool {
        !self.outstanding.is_empty()
    }

    /// Number of live CTAs.
    pub fn resident_ctas(&self) -> u32 {
        self.used_slots
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// Take and reset statistics.
    pub fn take_stats(&mut self) -> SmStats {
        std::mem::take(&mut self.stats)
    }

    /// L1 data-cache statistics (Figure 13).
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// Flush all caches and reset their statistics (between kernel launches,
    /// modelling the locality loss at `cudaMemcpy` boundaries).
    pub fn flush_caches(&mut self) {
        self.l1.flush();
        self.cc.flush();
        self.tc.flush();
    }

    /// Reset cache statistics only.
    pub fn reset_cache_stats(&mut self) {
        self.l1.reset_stats();
        self.cc.reset_stats();
        self.tc.reset_stats();
    }

    /// Attempt to place a CTA; returns `false` when resources don't fit.
    pub fn try_launch_cta(&mut self, cfg: CtaConfig) -> bool {
        let kernel = match self.program.get(cfg.kernel_id) {
            Some(k) => k,
            None => return false,
        };
        let threads = cfg.dims.threads_per_cta();
        let regs = kernel.regs_per_thread * threads;
        let smem = kernel.smem_per_cta;
        if self.used_slots + 1 > self.config.max_ctas
            || self.used_threads + threads > self.config.max_threads
            || self.used_regs + regs > self.config.registers
            || self.used_smem + smem > self.config.smem_bytes
        {
            return false;
        }
        let regs_per_thread = kernel.regs_per_thread;
        let warps_per_cta = cfg.dims.warps_per_cta();
        let slot_idx = self.free_slots.pop().unwrap_or_else(|| {
            self.slots.push(CtaSlot {
                cfg: cfg.clone(),
                smem: Vec::new(),
                warps: Vec::new(),
                running: 0,
                barrier_count: 0,
                children: 0,
                live: false,
                threads: 0,
                regs: 0,
                smem_bytes: 0,
            });
            self.slots.len() - 1
        });

        let mut warp_ids = Vec::with_capacity(warps_per_cta as usize);
        for w in 0..warps_per_cta {
            let assigned_before = w * WARP_SIZE as u32;
            let active = lane_mask((threads - assigned_before.min(threads)).min(WARP_SIZE as u32));
            let warp = Warp::new(regs_per_thread, active, slot_idx, w, self.age_counter);
            self.age_counter += 1;
            let widx = match self.free_warps.pop() {
                Some(i) => {
                    self.warps[i] = Some(warp);
                    i
                }
                None => {
                    self.warps.push(Some(warp));
                    self.warps.len() - 1
                }
            };
            warp_ids.push(widx);
        }
        self.live_warps += warps_per_cta;

        let slot = &mut self.slots[slot_idx];
        slot.cfg = cfg;
        slot.smem = vec![0; smem as usize];
        slot.warps = warp_ids;
        slot.running = warps_per_cta;
        slot.barrier_count = 0;
        slot.children = 0;
        slot.live = true;
        slot.threads = threads;
        slot.regs = regs;
        slot.smem_bytes = smem;

        self.used_threads += threads;
        self.used_regs += regs;
        self.used_smem += smem;
        self.used_slots += 1;
        true
    }

    /// Memory-system response for request `id` issued earlier.
    pub fn mem_response(&mut self, id: u64, now: u64) {
        match self.outstanding.remove(&id) {
            Some(RespRoute::LoadFill { tex, line }) => {
                let cache = if tex { &mut self.tc } else { &mut self.l1 };
                cache.fill(line * LINE_BYTES, false);
                if let Some(list) = self.waiters.remove(&(tex, line)) {
                    for (widx, reg) in list {
                        if let Some(w) = self.warps[widx].as_mut() {
                            let i = reg.0 as usize;
                            w.reg_pending[i] = w.reg_pending[i].saturating_sub(1);
                            if w.reg_pending[i] == 0 {
                                w.reg_ready[i] = now + 1;
                            }
                        }
                    }
                }
            }
            Some(RespRoute::Atomic { warp, reg }) => {
                if let Some(w) = self.warps[warp].as_mut() {
                    let i = reg.0 as usize;
                    w.reg_pending[i] = w.reg_pending[i].saturating_sub(1);
                    if w.reg_pending[i] == 0 {
                        w.reg_ready[i] = now + 1;
                    }
                }
            }
            None => {}
        }
    }

    /// A child grid launched by CTA `slot` has completed. `parent_grid`
    /// guards against slot reuse: the notification is dropped unless the
    /// slot still belongs to that grid (pass `None` to skip the check in
    /// tests).
    pub fn child_grid_done(&mut self, slot: usize, parent_grid: Option<u64>) {
        if slot >= self.slots.len() || !self.slots[slot].live {
            return;
        }
        if let Some(h) = parent_grid {
            if self.slots[slot].cfg.grid_handle != h {
                return;
            }
        }
        let s = &mut self.slots[slot];
        s.children = s.children.saturating_sub(1);
        if s.children == 0 {
            for &widx in &s.warps {
                if let Some(w) = self.warps[widx].as_mut() {
                    if w.block == WarpBlock::Dsync {
                        w.block = WarpBlock::None;
                    }
                }
            }
        }
    }

    /// Advance one cycle.
    ///
    /// `device_busy` tells the SM that the device is mid-launch or draining
    /// (empty cycles then count as "functional done" rather than idle).
    pub fn tick(
        &mut self,
        now: u64,
        gmem: &mut dyn GlobalMem,
        device_busy: bool,
        out: &mut TickOutput,
    ) {
        self.stats.cycles += 1;
        let nsched = self.config.schedulers as usize;
        if self.live_warps == 0 {
            // An SM waiting on kernel setup/drain stalls as "functional
            // done" (the paper's NvB signature); an SM with no work at all
            // is unused, not stalled, and contributes nothing to Figure 5.
            if device_busy {
                self.stats
                    .stalls
                    .add(StallReason::FunctionalDone, nsched as u64);
            }
            return;
        }
        let mut fallback: Option<StallReason> = None;
        for sched in 0..nsched {
            match self.pick(sched, now) {
                Ok(widx) => self.issue(widx, now, gmem, out),
                Err(reason) => {
                    // A scheduler with no warps of its own inherits the
                    // SM-wide dominant wait reason so small kernels don't
                    // drown Figure 5 in artificial idle slots.
                    let r = if reason == StallReason::Idle && self.live_warps > 0 {
                        if fallback.is_none() {
                            fallback = Some(self.global_wait_reason(now));
                        }
                        fallback.unwrap_or(reason)
                    } else {
                        reason
                    };
                    self.stats.stalls.add(r, 1);
                }
            }
        }
    }

    /// Dominant wait reason across all live warps (Memory > Control > Data
    /// > Barrier), used for schedulers with no warps of their own.
    fn global_wait_reason(&mut self, now: u64) -> StallReason {
        let mut best: Option<WaitKind> = None;
        for i in 0..self.warps.len() {
            match self.classify(i, now) {
                Some(WaitKind::Ready) => continue,
                Some(k) => {
                    best = Some(match (best, k) {
                        (None, k) => k,
                        (Some(WaitKind::Memory), _) | (_, WaitKind::Memory) => WaitKind::Memory,
                        (Some(WaitKind::Control), _) | (_, WaitKind::Control) => WaitKind::Control,
                        (Some(WaitKind::Data), _) | (_, WaitKind::Data) => WaitKind::Data,
                        (Some(k0), _) => k0,
                    });
                }
                None => {}
            }
        }
        match best {
            Some(WaitKind::Memory) => StallReason::MemLatency,
            Some(WaitKind::Control) => StallReason::ControlHazard,
            Some(WaitKind::Data) => StallReason::DataHazard,
            Some(WaitKind::Sync) => StallReason::Barrier,
            // All live warps ready but owned by other schedulers: the slot
            // is structurally idle.
            _ => StallReason::Idle,
        }
    }

    /// Classify a warp's readiness at `now`; `None` when not a candidate.
    fn classify(&mut self, widx: usize, now: u64) -> Option<WaitKind> {
        let kid = {
            let w = self.warps[widx].as_ref()?;
            if w.done {
                return None;
            }
            self.slots[w.cta_slot].cfg.kernel_id
        };
        // Split borrows: take the instruction descriptor values first.
        let (srcs, dst) = {
            let program = Arc::clone(&self.program);
            let w = self.warps[widx].as_mut()?;
            let entry = w.reconverge()?;
            let kernel = program.kernel(kid);
            match kernel.instrs.get(entry.pc) {
                Some(instr) => (instr.src_array(), instr.dst()),
                // PC fell off the instruction stream: report the warp as
                // ready so the scheduler picks it and `issue` can raise the
                // InvalidPc trap (unless it is already parked/trapped).
                None => {
                    let w = self.warps[widx].as_ref()?;
                    return Some(if w.block == WarpBlock::None {
                        WaitKind::Ready
                    } else {
                        WaitKind::Sync
                    });
                }
            }
        };
        let w = self.warps[widx].as_ref()?;
        Some(w.wait_kind(&srcs, dst, now))
    }

    /// Scheduler `sched` picks a warp or reports its stall reason.
    fn pick(&mut self, sched: usize, now: u64) -> Result<usize, StallReason> {
        let nsched = self.config.schedulers as usize;
        let candidates: Vec<usize> = (0..self.warps.len())
            .filter(|i| i % nsched == sched)
            .filter(|&i| self.warps[i].as_ref().map(|w| !w.done).unwrap_or(false))
            .collect();
        if candidates.is_empty() {
            return Err(StallReason::Idle);
        }

        let mut best_wait: Option<WaitKind> = None;
        let mut ready: Vec<usize> = Vec::new();
        for &i in &candidates {
            match self.classify(i, now) {
                Some(WaitKind::Ready) => ready.push(i),
                Some(k) => {
                    best_wait = Some(match (best_wait, k) {
                        (None, k) => k,
                        (Some(WaitKind::Memory), _) | (_, WaitKind::Memory) => WaitKind::Memory,
                        (Some(WaitKind::Control), _) | (_, WaitKind::Control) => WaitKind::Control,
                        (Some(WaitKind::Data), _) | (_, WaitKind::Data) => WaitKind::Data,
                        (Some(k0), _) => k0,
                    });
                }
                None => {}
            }
        }
        if ready.is_empty() {
            return Err(match best_wait {
                Some(WaitKind::Memory) => StallReason::MemLatency,
                Some(WaitKind::Control) => StallReason::ControlHazard,
                Some(WaitKind::Data) => StallReason::DataHazard,
                Some(WaitKind::Sync) => StallReason::Barrier,
                _ => StallReason::Idle,
            });
        }

        let chosen = match self.config.policy {
            SchedPolicy::Lrr | SchedPolicy::TwoLevel => {
                // Two-level approximates to LRR over the ready set here
                // because memory-blocked warps are already excluded from
                // `ready` (demotion) — the active-set cap is modelled by
                // rotating through at most `two_level_active` of them.
                let cap = if self.config.policy == SchedPolicy::TwoLevel {
                    self.config.two_level_active as usize
                } else {
                    ready.len()
                };
                let window = &ready[..ready.len().min(cap.max(1))];
                let cursor = self.rr_cursor[sched];
                let pos = window.iter().position(|&w| w > cursor).unwrap_or(0);
                let w = window[pos];
                self.rr_cursor[sched] = w;
                w
            }
            SchedPolicy::Gto => {
                if let Some(cur) = self.gto_current[sched] {
                    if ready.contains(&cur) {
                        cur
                    } else {
                        let w = self.oldest(&ready);
                        self.gto_current[sched] = Some(w);
                        w
                    }
                } else {
                    let w = self.oldest(&ready);
                    self.gto_current[sched] = Some(w);
                    w
                }
            }
            SchedPolicy::Old => self.oldest(&ready),
        };
        Ok(chosen)
    }

    fn oldest(&self, ready: &[usize]) -> usize {
        *ready
            .iter()
            .min_by_key(|&&i| self.warps[i].as_ref().map(|w| w.age).unwrap_or(u64::MAX))
            .expect("ready set nonempty")
    }

    #[inline]
    fn opval(w: &Warp, op: Operand, lane: usize) -> u64 {
        match op {
            Operand::Reg(r) => w.read(r, lane),
            Operand::Imm(v) => v,
        }
    }

    fn sreg_value(cfg: &CtaConfig, warp_in_cta: u32, lane: usize, sreg: SpecialReg) -> u64 {
        let dims = cfg.dims;
        let lin = warp_in_cta as u64 * WARP_SIZE as u64 + lane as u64;
        let (cx, cy, _cz) = dims.cta;
        let tid_x = lin % cx as u64;
        let tid_y = (lin / cx as u64) % cy as u64;
        let tid_z = lin / (cx as u64 * cy as u64);
        let (gx, gy, _gz) = dims.grid;
        let cta_x = cfg.cta_linear % gx as u64;
        let cta_y = (cfg.cta_linear / gx as u64) % gy as u64;
        let cta_z = cfg.cta_linear / (gx as u64 * gy as u64);
        match sreg {
            SpecialReg::TidX => tid_x,
            SpecialReg::TidY => tid_y,
            SpecialReg::TidZ => tid_z,
            SpecialReg::CtaIdX => cta_x,
            SpecialReg::CtaIdY => cta_y,
            SpecialReg::CtaIdZ => cta_z,
            SpecialReg::NTidX => dims.cta.0 as u64,
            SpecialReg::NTidY => dims.cta.1 as u64,
            SpecialReg::NTidZ => dims.cta.2 as u64,
            SpecialReg::NCtaIdX => dims.grid.0 as u64,
            SpecialReg::NCtaIdY => dims.grid.1 as u64,
            SpecialReg::NCtaIdZ => dims.grid.2 as u64,
            SpecialReg::LaneId => lane as u64,
            SpecialReg::WarpId => warp_in_cta as u64,
        }
    }

    fn param_read(params: &[u64], byte_addr: u64, width: Width) -> u64 {
        let word = (byte_addr / 8) as usize;
        let shift = (byte_addr % 8) * 8;
        let v = params.get(word).copied().unwrap_or(0) >> shift;
        match width {
            Width::B8 => v & 0xFF,
            Width::B16 => v & 0xFFFF,
            Width::B32 => v & 0xFFFF_FFFF,
            Width::B64 => v,
        }
    }

    fn bytes_read(data: &[u8], addr: u64, width: Width) -> u64 {
        let mut v: u64 = 0;
        for i in 0..width.bytes() {
            let b = data.get((addr + i) as usize).copied().unwrap_or(0);
            v |= (b as u64) << (8 * i);
        }
        v
    }

    fn bytes_write(data: &mut [u8], addr: u64, width: Width, value: u64) {
        for i in 0..width.bytes() {
            if let Some(slot) = data.get_mut((addr + i) as usize) {
                *slot = (value >> (8 * i)) as u8;
            }
        }
    }

    /// Per-lane local-memory remap into the grid's local arena.
    ///
    /// Like real GPUs, local memory is interleaved per warp at 8-byte
    /// granularity (`[warp][granule][lane]`): when all lanes of a warp
    /// access the same local offset — the common case for spilled arrays —
    /// the 32 lane addresses are contiguous and coalesce into two 128-byte
    /// transactions instead of 32.
    fn local_addr(
        interleave: bool,
        cfg: &CtaConfig,
        warp_in_cta: u32,
        lane: usize,
        addr: u64,
    ) -> u64 {
        if !interleave {
            // Ablation layout: contiguous per-thread arenas. Same-offset
            // accesses across a warp land `local_stride` bytes apart and
            // cannot coalesce.
            let tid = warp_in_cta as u64 * WARP_SIZE as u64 + lane as u64;
            let thread_global = cfg.cta_linear * cfg.dims.threads_per_cta() as u64 + tid;
            return cfg.local_base + thread_global * cfg.local_stride + addr;
        }
        let warp_global = cfg.cta_linear * cfg.dims.warps_per_cta() as u64 + warp_in_cta as u64;
        let granule = addr / 8;
        let rem = addr % 8;
        let warp_stride = cfg.local_stride * WARP_SIZE as u64;
        cfg.local_base
            + warp_global * warp_stride
            + granule * (8 * WARP_SIZE as u64)
            + lane as u64 * 8
            + rem
    }

    /// Park warp `widx` as trapped and report the guest fault.
    #[allow(clippy::too_many_arguments)]
    fn trap(
        &mut self,
        widx: usize,
        slot_idx: usize,
        kind: FaultKind,
        pc: usize,
        lane_mask: u32,
        addr: Option<u64>,
        out: &mut TickOutput,
    ) {
        let kid = self.slots[slot_idx].cfg.kernel_id;
        let cta_linear = self.slots[slot_idx].cfg.cta_linear;
        let instr = self
            .program
            .get(kid)
            .and_then(|k| k.instrs.get(pc))
            .map(|i| i.to_string())
            .unwrap_or_else(|| "<no instruction>".into());
        let warp_in_cta = self.warps[widx]
            .as_ref()
            .map(|w| w.warp_in_cta)
            .unwrap_or(0);
        if let Some(w) = self.warps[widx].as_mut() {
            w.block = WarpBlock::Trapped;
        }
        out.traps.push(Trap {
            kind,
            kernel: kid,
            slot: slot_idx,
            cta_linear,
            warp: widx,
            warp_in_cta,
            lane_mask,
            pc,
            instr,
            addr,
        });
    }

    /// First faulting lane's (kind, address) plus the mask of all faulting
    /// lanes, checking the raw per-lane addresses against `gmem`.
    fn check_lanes(
        gmem: &dyn GlobalMem,
        addrs: &[u64; WARP_SIZE],
        mask: u32,
        width: Width,
        store: bool,
    ) -> Option<(FaultKind, u64, u32)> {
        let mut first: Option<(FaultKind, u64)> = None;
        let mut faulting = 0u32;
        for lane in lanes(mask) {
            if let Some(k) = gmem.check(addrs[lane], width, store) {
                faulting |= 1 << lane;
                if first.is_none() {
                    first = Some((k, addrs[lane]));
                }
            }
        }
        first.map(|(k, a)| (k, a, faulting))
    }

    /// Shared-memory variant of [`SmCore::check_lanes`]: any access ending
    /// beyond `smem_len` overflows the CTA's allocation.
    fn check_shared_lanes(
        addrs: &[u64; WARP_SIZE],
        mask: u32,
        width: Width,
        smem_len: usize,
    ) -> Option<(u64, u32)> {
        let mut first: Option<u64> = None;
        let mut faulting = 0u32;
        for lane in lanes(mask) {
            if addrs[lane] + width.bytes() > smem_len as u64 {
                faulting |= 1 << lane;
                if first.is_none() {
                    first = Some(addrs[lane]);
                }
            }
        }
        first.map(|a| (a, faulting))
    }

    /// Discard all resident work: CTAs, warps, outstanding requests and
    /// MSHR waiters. The device calls this after a guest fault to return
    /// the SM to a clean idle state; caches and statistics survive so they
    /// stay inspectable post-mortem, and late memory responses for cleared
    /// requests are dropped harmlessly.
    pub fn abort_workload(&mut self) {
        self.slots.clear();
        self.free_slots.clear();
        self.warps.clear();
        self.free_warps.clear();
        self.live_warps = 0;
        self.used_threads = 0;
        self.used_regs = 0;
        self.used_smem = 0;
        self.used_slots = 0;
        self.outstanding.clear();
        self.waiters.clear();
        for c in &mut self.rr_cursor {
            *c = 0;
        }
        for g in &mut self.gto_current {
            *g = None;
        }
    }

    /// Requests outstanding to the memory system.
    pub fn outstanding_requests(&self) -> usize {
        self.outstanding.len()
    }

    /// Blocked-state snapshot of every resident warp, tagged with the
    /// caller-supplied device-wide SM index `sm`. Feeds the deadlock report.
    pub fn warp_report(&self, sm: usize) -> Vec<WarpReport> {
        let mut reports = Vec::new();
        for (widx, w) in self.warps.iter().enumerate() {
            let Some(w) = w else { continue };
            let slot = &self.slots[w.cta_slot];
            let kernel = self
                .program
                .get(slot.cfg.kernel_id)
                .map(|k| k.name.clone())
                .unwrap_or_else(|| format!("{}", slot.cfg.kernel_id));
            let pending: u32 = w.reg_pending.iter().map(|&p| p as u32).sum();
            let wait = if w.done {
                WarpWait::Done
            } else {
                match w.block {
                    WarpBlock::Barrier => WarpWait::Barrier {
                        arrived: slot.barrier_count,
                        running: slot.running,
                    },
                    WarpBlock::Dsync => WarpWait::Dsync {
                        children: slot.children,
                    },
                    WarpBlock::Trapped => WarpWait::Trapped,
                    WarpBlock::None if pending > 0 => WarpWait::Memory { fills: pending },
                    WarpBlock::None => WarpWait::Runnable,
                }
            };
            reports.push(WarpReport {
                sm,
                warp: widx,
                kernel,
                cta: slot.cfg.cta_linear,
                warp_in_cta: w.warp_in_cta,
                pc: w.stack.last().map(|e| e.pc),
                wait,
            });
        }
        reports
    }

    /// Issue one instruction from warp `widx`.
    #[allow(clippy::too_many_lines)]
    fn issue(&mut self, widx: usize, now: u64, gmem: &mut dyn GlobalMem, out: &mut TickOutput) {
        let program = Arc::clone(&self.program);
        let (slot_idx, kid, entry) = {
            let w = self.warps[widx].as_mut().expect("issuing dead warp");
            let entry = w.reconverge().expect("issuing finished warp");
            (w.cta_slot, self.slots[w.cta_slot].cfg.kernel_id, entry)
        };
        let kernel: &Kernel = program.kernel(kid);
        let Some(instr) = kernel.instrs.get(entry.pc).cloned() else {
            // The PC fell off the end of the instruction stream (possible
            // for hand-built kernels whose last path misses `Exit`).
            self.trap(
                widx,
                slot_idx,
                FaultKind::InvalidPc,
                entry.pc,
                entry.mask,
                None,
                out,
            );
            return;
        };
        let mask = entry.mask;
        let nlanes = mask.count_ones();
        let pc = entry.pc;
        let lat = self.config.lat;

        self.stats.record_issue(instr.class(), nlanes);
        out.issued += 1;
        if let Some(space) = instr.mem_space() {
            self.stats.record_mem(space);
        }

        // Default post-issue state; overridden below where needed.
        {
            let w = self.warps[widx]
                .as_mut()
                .expect("scheduled warp is resident");
            w.next_issue_at = now + 1;
            w.issue_block_is_control = false;
        }

        match instr {
            Instr::Alu { op, dst, a, b } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let av = Self::opval(w, a, lane);
                    let bv = Self::opval(w, b, lane);
                    w.write(dst, lane, op.eval(av, bv));
                }
                let l = match op.class() {
                    ggpu_isa::InstrClass::Sfu => lat.sfu,
                    ggpu_isa::InstrClass::Fp => {
                        if op.is_f64() {
                            lat.fp64
                        } else {
                            lat.fp32
                        }
                    }
                    _ => lat.int,
                };
                w.reg_ready[dst.0 as usize] = now + l;
                if op.is_f64() {
                    w.next_issue_at = now + lat.f64_interval;
                }
                w.advance_pc();
            }
            Instr::Fma { f64, dst, a, b, c } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let av = Self::opval(w, a, lane);
                    let bv = Self::opval(w, b, lane);
                    let cv = Self::opval(w, c, lane);
                    let r = if f64 {
                        let x = f64::from_bits(av);
                        let y = f64::from_bits(bv);
                        let z = f64::from_bits(cv);
                        x.mul_add(y, z).to_bits()
                    } else {
                        let x = f32::from_bits(av as u32);
                        let y = f32::from_bits(bv as u32);
                        let z = f32::from_bits(cv as u32);
                        x.mul_add(y, z).to_bits() as u64
                    };
                    w.write(dst, lane, r);
                }
                w.reg_ready[dst.0 as usize] = now + if f64 { lat.fp64 } else { lat.fp32 };
                if f64 {
                    w.next_issue_at = now + lat.f64_interval;
                }
                w.advance_pc();
            }
            Instr::Mov { dst, src } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let v = Self::opval(w, src, lane);
                    w.write(dst, lane, v);
                }
                w.reg_ready[dst.0 as usize] = now + 1;
                w.advance_pc();
            }
            Instr::Sel {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let c = w.read(cond, lane);
                    let v = if c != 0 {
                        Self::opval(w, if_true, lane)
                    } else {
                        Self::opval(w, if_false, lane)
                    };
                    w.write(dst, lane, v);
                }
                w.reg_ready[dst.0 as usize] = now + lat.int;
                w.advance_pc();
            }
            Instr::SetP {
                pred,
                cmp,
                ty,
                a,
                b,
            } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let av = Self::opval(w, a, lane);
                    let bv = Self::opval(w, b, lane);
                    w.write(pred, lane, cmp.eval(ty, av, bv) as u64);
                }
                w.reg_ready[pred.0 as usize] = now + lat.int;
                w.advance_pc();
            }
            Instr::Cvt { kind, dst, src } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let v = Self::opval(w, src, lane);
                    w.write(dst, lane, kind.eval(v));
                }
                let fp = matches!(
                    kind,
                    CvtKind::I2D | CvtKind::D2I | CvtKind::F2D | CvtKind::D2F
                );
                w.reg_ready[dst.0 as usize] = now + if fp { lat.fp32 } else { lat.int };
                w.advance_pc();
            }
            Instr::Sreg { dst, sreg } => {
                let cfg = self.slots[slot_idx].cfg.clone();
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                let wic = w.warp_in_cta;
                for lane in lanes(mask) {
                    w.write(dst, lane, Self::sreg_value(&cfg, wic, lane, sreg));
                }
                w.reg_ready[dst.0 as usize] = now + 1;
                w.advance_pc();
            }
            Instr::Ld {
                space,
                width,
                dst,
                addr,
                offset,
            } => {
                self.exec_load(
                    widx, slot_idx, pc, space, width, dst, addr, offset, now, gmem, out,
                );
            }
            Instr::St {
                space,
                width,
                src,
                addr,
                offset,
            } => {
                self.exec_store(
                    widx, slot_idx, pc, space, width, src, addr, offset, now, gmem, out,
                );
            }
            Instr::Atom {
                op,
                space,
                dst,
                addr,
                src,
                cas_cmp,
            } => {
                self.exec_atomic(
                    widx, slot_idx, pc, op, space, dst, addr, src, cas_cmp, now, gmem, out,
                );
            }
            Instr::Bar => {
                if self.config.trap_divergent_barrier
                    && self.warps[widx]
                        .as_ref()
                        .map(|w| w.stack.len() > 1)
                        .unwrap_or(false)
                {
                    self.trap(
                        widx,
                        slot_idx,
                        FaultKind::BarrierDivergence,
                        pc,
                        mask,
                        None,
                        out,
                    );
                    return;
                }
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.advance_pc();
                    w.block = WarpBlock::Barrier;
                }
                let slot = &mut self.slots[slot_idx];
                slot.barrier_count += 1;
                if slot.barrier_count >= slot.running {
                    slot.barrier_count = 0;
                    let warps = slot.warps.clone();
                    for wi in warps {
                        if let Some(w) = self.warps[wi].as_mut() {
                            if w.block == WarpBlock::Barrier {
                                w.block = WarpBlock::None;
                            }
                        }
                    }
                }
            }
            Instr::Bra {
                pred,
                target,
                reconv,
            } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                let taken = match pred {
                    None => mask,
                    Some((r, expect)) => {
                        let mut t = 0u32;
                        for lane in lanes(mask) {
                            let v = w.read(r, lane) != 0;
                            if v == expect {
                                t |= 1 << lane;
                            }
                        }
                        t
                    }
                };
                w.branch(taken, target, pc + 1, reconv);
                w.next_issue_at = now + lat.branch;
                w.issue_block_is_control = true;
            }
            Instr::Launch {
                kernel,
                grid_x,
                block_x,
                params_ptr,
                param_words,
            } => {
                let mut launches = Vec::new();
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    for lane in lanes(mask) {
                        let gx = Self::opval(w, grid_x, lane).max(1) as u32;
                        let bx = Self::opval(w, block_x, lane).max(1) as u32;
                        let ptr = Self::opval(w, params_ptr, lane);
                        launches.push((gx, bx, ptr));
                    }
                    w.advance_pc();
                    // Device-side launch overhead occupies the warp.
                    w.next_issue_at = now + lat.cmem_miss.max(100);
                    w.issue_block_is_control = true;
                }
                // Parameter-block reads fault like any other global access.
                for &(_, _, ptr) in &launches {
                    for i in 0..param_words as u64 {
                        if let Some(k) = gmem.check(ptr + i * 8, Width::B64, false) {
                            self.trap(widx, slot_idx, k, pc, mask, Some(ptr + i * 8), out);
                            return;
                        }
                    }
                }
                let parent_grid = self.slots[slot_idx].cfg.grid_handle;
                for (gx, bx, ptr) in launches {
                    let mut params = Vec::with_capacity(param_words as usize);
                    for i in 0..param_words {
                        params.push(gmem.read(ptr + i as u64 * 8, Width::B64));
                    }
                    out.launches.push(DeviceLaunch {
                        kernel,
                        grid_x: gx,
                        block_x: bx,
                        params,
                        parent_slot: slot_idx,
                        parent_grid,
                    });
                    self.slots[slot_idx].children += 1;
                    self.stats.device_launches += 1;
                }
            }
            Instr::Dsync => {
                let children = self.slots[slot_idx].children;
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
                if children > 0 {
                    w.block = WarpBlock::Dsync;
                }
            }
            Instr::Exit => {
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.done = true;
                }
                self.live_warps -= 1;
                let slot = &mut self.slots[slot_idx];
                slot.running -= 1;
                if slot.running == 0 {
                    // CTA complete: free resources.
                    slot.live = false;
                    self.used_threads -= slot.threads;
                    self.used_regs -= slot.regs;
                    self.used_smem -= slot.smem_bytes;
                    self.used_slots -= 1;
                    self.stats.ctas_completed += 1;
                    let grid_handle = slot.cfg.grid_handle;
                    let warps = std::mem::take(&mut slot.warps);
                    slot.smem = Vec::new();
                    for wi in warps {
                        self.warps[wi] = None;
                        self.free_warps.push(wi);
                    }
                    self.free_slots.push(slot_idx);
                    out.completed.push(CompletedCta {
                        grid_handle,
                        slot: slot_idx,
                    });
                } else if slot.barrier_count >= slot.running && slot.barrier_count > 0 {
                    // Remaining warps were all parked at a barrier: release
                    // them rather than deadlocking.
                    slot.barrier_count = 0;
                    let warps = slot.warps.clone();
                    for wi in warps {
                        if let Some(w) = self.warps[wi].as_mut() {
                            if w.block == WarpBlock::Barrier {
                                w.block = WarpBlock::None;
                            }
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        widx: usize,
        slot_idx: usize,
        pc: usize,
        space: Space,
        width: Width,
        dst: Reg,
        addr: Operand,
        offset: i64,
        now: u64,
        gmem: &mut dyn GlobalMem,
        out: &mut TickOutput,
    ) {
        let lat = self.config.lat;
        match space {
            Space::Param => {
                let params = Arc::clone(&self.slots[slot_idx].cfg.params);
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(w.reconverge().expect("divergence stack entry").mask) {
                    let a = Self::opval(w, addr, lane).wrapping_add(offset as u64);
                    let v = Self::param_read(&params, a, width);
                    w.write(dst, lane, v);
                }
                w.reg_ready[dst.0 as usize] = now + lat.param;
                w.advance_pc();
            }
            Space::Const => {
                let cdata = Arc::clone(&self.slots[slot_idx].cfg.const_data);
                let mask;
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    for lane in lanes(mask) {
                        let a = Self::opval(w, addr, lane).wrapping_add(offset as u64);
                        self.scratch_addrs[lane] = a;
                        let v = Self::bytes_read(&cdata, a, width);
                        w.write(dst, lane, v);
                    }
                }
                // Constant cache timing: a miss pays a fixed refill penalty.
                let mut lines = std::mem::take(&mut self.scratch_lines);
                coalesce_lines(&self.scratch_addrs, mask, width.bytes(), &mut lines);
                let mut l = lat.cmem_hit;
                for &line in &lines {
                    match self.cc.access(line * LINE_BYTES, false) {
                        CacheOutcome::Hit => {}
                        _ => {
                            self.cc.fill(line * LINE_BYTES, false);
                            l = lat.cmem_miss;
                        }
                    }
                }
                self.scratch_lines = lines;
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.reg_ready[dst.0 as usize] = now + l;
                w.advance_pc();
            }
            Space::Shared => {
                let mask;
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    for lane in lanes(mask) {
                        self.scratch_addrs[lane] =
                            Self::opval(w, addr, lane).wrapping_add(offset as u64);
                    }
                }
                if let Some((a, fl)) = Self::check_shared_lanes(
                    &self.scratch_addrs,
                    mask,
                    width,
                    self.slots[slot_idx].smem.len(),
                ) {
                    self.trap(
                        widx,
                        slot_idx,
                        FaultKind::SharedMemOverflow,
                        pc,
                        fl,
                        Some(a),
                        out,
                    );
                    return;
                }
                let degree = bank_conflict_degree(&self.scratch_addrs, mask) as u64;
                self.stats.bank_conflict_cycles += degree - 1;
                let slot = &self.slots[slot_idx];
                let mut vals = [0u64; WARP_SIZE];
                for lane in lanes(mask) {
                    vals[lane] = Self::bytes_read(&slot.smem, self.scratch_addrs[lane], width);
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    w.write(dst, lane, vals[lane]);
                }
                w.reg_ready[dst.0 as usize] = now + lat.smem + (degree - 1);
                w.advance_pc();
            }
            Space::Global | Space::Local | Space::Tex => {
                let cfg = self.slots[slot_idx].cfg.clone();
                let mask;
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    let wic = w.warp_in_cta;
                    for lane in lanes(mask) {
                        let mut a = Self::opval(w, addr, lane).wrapping_add(offset as u64);
                        if space == Space::Local {
                            a = Self::local_addr(self.config.interleave_local, &cfg, wic, lane, a);
                        }
                        self.scratch_addrs[lane] = a;
                    }
                }
                // Guest-fault check on the raw per-lane addresses, before
                // coalescing and before any functional access.
                if let Some((k, a, fl)) =
                    Self::check_lanes(gmem, &self.scratch_addrs, mask, width, false)
                {
                    self.trap(widx, slot_idx, k, pc, fl, Some(a), out);
                    return;
                }
                // Functional read.
                let mut vals = [0u64; WARP_SIZE];
                for lane in lanes(mask) {
                    vals[lane] = gmem.read(self.scratch_addrs[lane], width);
                }
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    for lane in lanes(mask) {
                        w.write(dst, lane, vals[lane]);
                    }
                }
                // Timing.
                let mut lines = std::mem::take(&mut self.scratch_lines);
                coalesce_lines(&self.scratch_addrs, mask, width.bytes(), &mut lines);
                if self.config.perfect_memory {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.reg_ready[dst.0 as usize] = now + lat.l1_hit;
                } else {
                    let tex = space == Space::Tex;
                    let mut misses = 0u16;
                    for &line in &lines {
                        let cache = if tex { &mut self.tc } else { &mut self.l1 };
                        match cache.access(line * LINE_BYTES, false) {
                            CacheOutcome::Hit => {}
                            CacheOutcome::MshrMerged => {
                                misses += 1;
                                self.waiters
                                    .entry((tex, line))
                                    .or_default()
                                    .push((widx, dst));
                            }
                            _ => {
                                misses += 1;
                                let id = self.next_req_id;
                                self.next_req_id += 1;
                                self.outstanding
                                    .insert(id, RespRoute::LoadFill { tex, line });
                                self.waiters
                                    .entry((tex, line))
                                    .or_default()
                                    .push((widx, dst));
                                out.mem_requests.push(MemRequest {
                                    id,
                                    addr: line * LINE_BYTES,
                                    kind: ReqKind::Load,
                                    tex,
                                });
                                self.stats.offchip_txns += 1;
                            }
                        }
                    }
                    // The LSU processes one coalesced transaction per
                    // cycle: an uncoalesced access occupies the warp's
                    // issue slot for `lines` cycles even when it hits.
                    let serialize = lines.len().saturating_sub(1) as u64;
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    if misses == 0 {
                        w.reg_ready[dst.0 as usize] = now + lat.l1_hit + serialize;
                    } else {
                        w.reg_pending[dst.0 as usize] += misses;
                    }
                    w.next_issue_at = w.next_issue_at.max(now + 1 + serialize);
                }
                self.scratch_lines = lines;
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store(
        &mut self,
        widx: usize,
        slot_idx: usize,
        pc: usize,
        space: Space,
        width: Width,
        src: Operand,
        addr: Operand,
        offset: i64,
        now: u64,
        gmem: &mut dyn GlobalMem,
        out: &mut TickOutput,
    ) {
        let lat = self.config.lat;
        let _ = lat;
        match space {
            Space::Param | Space::Const | Space::Tex => {
                debug_assert!(false, "store to read-only space {space}");
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
            }
            Space::Shared => {
                let mask;
                let mut vals = [0u64; WARP_SIZE];
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    for lane in lanes(mask) {
                        self.scratch_addrs[lane] =
                            Self::opval(w, addr, lane).wrapping_add(offset as u64);
                        vals[lane] = Self::opval(w, src, lane);
                    }
                }
                if let Some((a, fl)) = Self::check_shared_lanes(
                    &self.scratch_addrs,
                    mask,
                    width,
                    self.slots[slot_idx].smem.len(),
                ) {
                    self.trap(
                        widx,
                        slot_idx,
                        FaultKind::SharedMemOverflow,
                        pc,
                        fl,
                        Some(a),
                        out,
                    );
                    return;
                }
                let degree = bank_conflict_degree(&self.scratch_addrs, mask) as u64;
                self.stats.bank_conflict_cycles += degree - 1;
                let slot = &mut self.slots[slot_idx];
                for lane in lanes(mask) {
                    Self::bytes_write(&mut slot.smem, self.scratch_addrs[lane], width, vals[lane]);
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.next_issue_at = now + 1 + (degree - 1);
                w.advance_pc();
            }
            Space::Global | Space::Local => {
                let cfg = self.slots[slot_idx].cfg.clone();
                let mask;
                let mut vals = [0u64; WARP_SIZE];
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    let wic = w.warp_in_cta;
                    for lane in lanes(mask) {
                        let mut a = Self::opval(w, addr, lane).wrapping_add(offset as u64);
                        if space == Space::Local {
                            a = Self::local_addr(self.config.interleave_local, &cfg, wic, lane, a);
                        }
                        self.scratch_addrs[lane] = a;
                        vals[lane] = Self::opval(w, src, lane);
                    }
                }
                if let Some((k, a, fl)) =
                    Self::check_lanes(gmem, &self.scratch_addrs, mask, width, true)
                {
                    self.trap(widx, slot_idx, k, pc, fl, Some(a), out);
                    return;
                }
                for lane in lanes(mask) {
                    gmem.write(self.scratch_addrs[lane], width, vals[lane]);
                }
                if !self.config.perfect_memory {
                    let mut lines = std::mem::take(&mut self.scratch_lines);
                    coalesce_lines(&self.scratch_addrs, mask, width.bytes(), &mut lines);
                    for &line in &lines {
                        let outcome = self.l1.access(line * LINE_BYTES, true);
                        // Thread-private local stores are absorbed by the L1
                        // when resident (write-back behaviour on real GPUs);
                        // global stores write through.
                        if space == Space::Local {
                            match outcome {
                                CacheOutcome::Hit => continue,
                                _ => self.l1.fill(line * LINE_BYTES, false),
                            }
                        }
                        let id = self.next_req_id;
                        self.next_req_id += 1;
                        out.mem_requests.push(MemRequest {
                            id,
                            addr: line * LINE_BYTES,
                            kind: ReqKind::Store,
                            tex: false,
                        });
                        self.stats.offchip_txns += 1;
                    }
                    let serialize = lines.len().saturating_sub(1) as u64;
                    self.scratch_lines = lines;
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.next_issue_at = w.next_issue_at.max(now + 1 + serialize);
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atomic(
        &mut self,
        widx: usize,
        slot_idx: usize,
        pc: usize,
        op: AtomOp,
        space: Space,
        dst: Reg,
        addr: Operand,
        src: Operand,
        cas_cmp: Operand,
        now: u64,
        gmem: &mut dyn GlobalMem,
        out: &mut TickOutput,
    ) {
        let lat = self.config.lat;
        let mask;
        let mut addrs = [0u64; WARP_SIZE];
        let mut srcs = [0u64; WARP_SIZE];
        let mut cmps = [0u64; WARP_SIZE];
        {
            let w = self.warps[widx]
                .as_mut()
                .expect("scheduled warp is resident");
            mask = w.reconverge().expect("divergence stack entry").mask;
            for lane in lanes(mask) {
                addrs[lane] = Self::opval(w, addr, lane);
                srcs[lane] = Self::opval(w, src, lane);
                cmps[lane] = Self::opval(w, cas_cmp, lane);
            }
        }
        match space {
            Space::Shared => {
                if let Some((a, fl)) = Self::check_shared_lanes(
                    &addrs,
                    mask,
                    Width::B64,
                    self.slots[slot_idx].smem.len(),
                ) {
                    self.trap(
                        widx,
                        slot_idx,
                        FaultKind::SharedMemOverflow,
                        pc,
                        fl,
                        Some(a),
                        out,
                    );
                    return;
                }
                let slot = &mut self.slots[slot_idx];
                let mut olds = [0u64; WARP_SIZE];
                for lane in lanes(mask) {
                    let old = Self::bytes_read(&slot.smem, addrs[lane], Width::B64);
                    let (new, o) = op.apply(old, srcs[lane], cmps[lane]);
                    Self::bytes_write(&mut slot.smem, addrs[lane], Width::B64, new);
                    olds[lane] = o;
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    w.write(dst, lane, olds[lane]);
                }
                w.reg_ready[dst.0 as usize] = now + lat.smem + nlanes_extra(mask);
                w.advance_pc();
            }
            _ => {
                // Global atomics execute at the memory partition; lanes are
                // applied in lane order (deterministic serialization).
                if let Some((k, a, fl)) = Self::check_lanes(gmem, &addrs, mask, Width::B64, true) {
                    self.trap(widx, slot_idx, k, pc, fl, Some(a), out);
                    return;
                }
                let mut olds = [0u64; WARP_SIZE];
                for lane in lanes(mask) {
                    olds[lane] = gmem.atom(op, addrs[lane], srcs[lane], cmps[lane]);
                }
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    for lane in lanes(mask) {
                        w.write(dst, lane, olds[lane]);
                    }
                }
                if self.config.perfect_memory {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.reg_ready[dst.0 as usize] = now + lat.l1_hit;
                } else {
                    // One round-trip per distinct line.
                    let mut lines = std::mem::take(&mut self.scratch_lines);
                    coalesce_lines(&addrs, mask, 8, &mut lines);
                    {
                        let w = self.warps[widx]
                            .as_mut()
                            .expect("scheduled warp is resident");
                        w.reg_pending[dst.0 as usize] += lines.len() as u16;
                    }
                    for &line in &lines {
                        let id = self.next_req_id;
                        self.next_req_id += 1;
                        self.outstanding.insert(
                            id,
                            RespRoute::Atomic {
                                warp: widx,
                                reg: dst,
                            },
                        );
                        out.mem_requests.push(MemRequest {
                            id,
                            addr: line * LINE_BYTES,
                            kind: ReqKind::Atomic,
                            tex: false,
                        });
                        self.stats.offchip_txns += 1;
                    }
                    self.scratch_lines = lines;
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
            }
        }
    }
}

/// Serialization overhead for multi-lane shared atomics.
fn nlanes_extra(mask: u32) -> u64 {
    (mask.count_ones() as u64).saturating_sub(1)
}
