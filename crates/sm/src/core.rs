//! The streaming-multiprocessor core: CTA slots, warp scheduling, and
//! per-cycle stall accounting. Functional execution of the ISA (including
//! memory coalescing into off-chip requests) lives in the child module
//! [`exec`](self); all traffic with the rest of the device crosses the
//! explicit port boundary in [`crate::ports`].

mod exec;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ggpu_isa::{
    AtomOp, CvtKind, FaultKind, Instr, InstrClass, KernelId, LaunchDims, Operand, Program, Reg,
    SpecialReg, Width, WARP_SIZE,
};
use ggpu_mem::{Cache, CacheStats, LINE_BYTES};

use crate::config::{LatencyConfig, SchedPolicy, SmConfig};
use crate::pc::PcTable;
use crate::ports::{MemOp, SmPorts, TickOutput};
use crate::stats::{SmStats, StallReason};
use crate::warp::{lane_mask, lanes, WaitKind, Warp, WarpBlock};

/// Functional backing store for global/local/texture memory, provided by the
/// device (the SM only models timing for these spaces).
///
/// Reads take `&self`: during a tick the SM observes memory as an immutable
/// snapshot of cycle-start state, which is what allows SMs to tick
/// concurrently. Mutation happens only through the deferred
/// [`MemOp`] log committed serially by
/// [`SmCore::commit_mem_ops`] after every SM has ticked.
pub trait GlobalMem {
    /// Read `width` bytes at `addr`, zero-extended.
    fn read(&self, addr: u64, width: Width) -> u64;
    /// Write the low `width` bytes of `value` at `addr`.
    fn write(&mut self, addr: u64, width: Width, value: u64);
    /// Atomically apply `op`; returns the old value.
    fn atom(&mut self, op: AtomOp, addr: u64, src: u64, cas: u64) -> u64;
    /// Would an access of `width` bytes at `addr` fault?
    ///
    /// Called per lane on the raw (pre-coalescing) addresses before any
    /// functional access is performed; a `Some` answer traps the warp
    /// instead of executing it. The default accepts everything, so simple
    /// test memories need not implement bounds.
    fn check(&self, addr: u64, width: Width, store: bool) -> Option<FaultKind> {
        let _ = (addr, width, store);
        None
    }
}

/// Everything the device provides when placing a CTA on an SM.
#[derive(Debug, Clone)]
pub struct CtaConfig {
    /// Kernel to run.
    pub kernel_id: KernelId,
    /// Device-side grid-instance handle this CTA belongs to.
    pub grid_handle: u64,
    /// Linear CTA index within the grid.
    pub cta_linear: u64,
    /// Grid/CTA dimensions of the launch.
    pub dims: LaunchDims,
    /// Kernel parameters (u64 words).
    pub params: Arc<Vec<u64>>,
    /// Constant-memory image bound to the kernel.
    pub const_data: Arc<Vec<u8>>,
    /// Base of this grid's local-memory arena in global address space.
    pub local_base: u64,
    /// Bytes of local memory per thread.
    pub local_stride: u64,
}

/// A guest fault raised by a warp, carrying enough context for the device
/// to compose a CUDA-style error report.
#[derive(Debug, Clone, PartialEq)]
pub struct Trap {
    /// Fault class.
    pub kind: FaultKind,
    /// Kernel the faulting warp was running.
    pub kernel: KernelId,
    /// SM-local CTA slot the warp belonged to.
    pub slot: usize,
    /// Linear CTA index within its grid.
    pub cta_linear: u64,
    /// SM-local warp index.
    pub warp: usize,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// Lanes that faulted (memory faults) or were active (others).
    pub lane_mask: u32,
    /// Program counter of the faulting instruction.
    pub pc: usize,
    /// Disassembly of the faulting instruction.
    pub instr: String,
    /// First faulting address, for memory faults.
    pub addr: Option<u64>,
}

/// Why a resident warp is currently not retiring instructions, as reported
/// by [`SmCore::warp_report`] for deadlock diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpWait {
    /// Runnable (the scheduler simply has not picked it yet).
    Runnable,
    /// Parked at the CTA barrier; `arrived` of `running` warps are there.
    Barrier {
        /// Warps of the CTA that have reached the barrier.
        arrived: u32,
        /// Warps of the CTA still running.
        running: u32,
    },
    /// Waiting in `cudaDeviceSynchronize` on outstanding child grids.
    Dsync {
        /// Child grids the CTA is still waiting for.
        children: u32,
    },
    /// Trapped on a guest fault.
    Trapped,
    /// Waiting on outstanding memory fills.
    Memory {
        /// Pending register fills (MSHR entries this warp waits on).
        fills: u32,
    },
    /// Finished (executed `Exit`).
    Done,
}

impl fmt::Display for WarpWait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarpWait::Runnable => write!(f, "runnable"),
            WarpWait::Barrier { arrived, running } => {
                write!(f, "at barrier ({arrived}/{running} warps arrived)")
            }
            WarpWait::Dsync { children } => {
                write!(
                    f,
                    "in cudaDeviceSynchronize ({children} child grids pending)"
                )
            }
            WarpWait::Trapped => write!(f, "trapped"),
            WarpWait::Memory { fills } => write!(f, "awaiting {fills} memory fills"),
            WarpWait::Done => write!(f, "done"),
        }
    }
}

/// Snapshot of one resident warp's blocked-state for the deadlock report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpReport {
    /// Device-wide SM index (provided by the caller).
    pub sm: usize,
    /// SM-local warp index.
    pub warp: usize,
    /// Kernel name.
    pub kernel: String,
    /// Linear CTA index within its grid.
    pub cta: u64,
    /// Warp index within the CTA.
    pub warp_in_cta: u32,
    /// Current PC (`None` once done).
    pub pc: Option<usize>,
    /// What the warp is blocked on.
    pub wait: WarpWait,
}

impl fmt::Display for WarpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sm {} warp {} ({} cta {} warp-in-cta {}, pc {}): {}",
            self.sm,
            self.warp,
            self.kernel,
            self.cta,
            self.warp_in_cta,
            self.pc.map_or("-".to_string(), |p| p.to_string()),
            self.wait
        )
    }
}

#[derive(Debug)]
struct CtaSlot {
    cfg: CtaConfig,
    smem: Vec<u8>,
    warps: Vec<usize>,
    /// Warps not yet exited.
    running: u32,
    /// Warps currently parked at the barrier.
    barrier_count: u32,
    /// Outstanding child grids (CDP).
    children: u32,
    live: bool,
    threads: u32,
    regs: u32,
    smem_bytes: u32,
}

#[derive(Debug)]
enum RespRoute {
    LoadFill { tex: bool, line: u64 },
    Atomic { warp: usize, reg: Reg },
}

/// Predecoded per-instruction facts for the scheduler and issue hot paths:
/// operand registers for scoreboard classification plus the resolved result
/// latency. Built once per program in [`SmCore::new`] so neither the
/// per-cycle classification in [`SmCore::tick`] nor the issue stage has to
/// re-match the `Instr` enum for timing.
#[derive(Debug, Clone, Copy)]
struct InstrMeta {
    /// Source registers read by the instruction.
    srcs: [Option<Reg>; 3],
    /// Destination register, if any.
    dst: Option<Reg>,
    /// Result latency for directly-executed (non-memory, non-control) ops;
    /// unused (zero) for memory/control instructions whose timing is
    /// computed at issue.
    lat: u64,
    /// Instruction pays the f64 issue-interval penalty.
    f64_pen: bool,
}

impl InstrMeta {
    fn new(instr: &Instr, lat: &LatencyConfig) -> Self {
        let (l, pen) = match *instr {
            Instr::Alu { op, .. } => {
                let l = match op.class() {
                    InstrClass::Sfu => lat.sfu,
                    InstrClass::Fp => {
                        if op.is_f64() {
                            lat.fp64
                        } else {
                            lat.fp32
                        }
                    }
                    _ => lat.int,
                };
                (l, op.is_f64())
            }
            Instr::Fma { f64, .. } => (if f64 { lat.fp64 } else { lat.fp32 }, f64),
            Instr::Mov { .. } | Instr::Sreg { .. } => (1, false),
            Instr::Sel { .. } | Instr::SetP { .. } => (lat.int, false),
            Instr::Cvt { kind, .. } => {
                let fp = matches!(
                    kind,
                    CvtKind::I2D | CvtKind::D2I | CvtKind::F2D | CvtKind::D2F
                );
                (if fp { lat.fp32 } else { lat.int }, false)
            }
            _ => (0, false),
        };
        InstrMeta {
            srcs: instr.src_array(),
            dst: instr.dst(),
            lat: l,
            f64_pen: pen,
        }
    }
}

/// A single streaming multiprocessor.
///
/// The device calls [`SmCore::try_launch_cta`] to place work,
/// [`SmCore::tick`] every cycle, [`SmCore::mem_response`] when the memory
/// system answers a request, and [`SmCore::child_grid_done`] when a CDP
/// child grid drains.
#[derive(Debug)]
pub struct SmCore {
    config: SmConfig,
    program: Arc<Program>,
    slots: Vec<CtaSlot>,
    free_slots: Vec<usize>,
    warps: Vec<Option<Warp>>,
    free_warps: Vec<usize>,
    live_warps: u32,
    used_threads: u32,
    used_regs: u32,
    used_smem: u32,
    used_slots: u32,
    l1: Cache,
    cc: Cache,
    tc: Cache,
    outstanding: HashMap<u64, RespRoute>,
    waiters: HashMap<(bool, u64), Vec<(usize, Reg)>>,
    next_req_id: u64,
    age_counter: u64,
    /// Per-scheduler round-robin cursor.
    rr_cursor: Vec<usize>,
    /// Per-scheduler sticky warp for GTO.
    gto_current: Vec<Option<usize>>,
    stats: SmStats,
    /// Per-PC attribution table, allocated only when
    /// [`SmConfig::attribution`] is set.
    pc_stats: Option<Box<PcTable>>,
    /// Scratch buffers reused across cycles.
    scratch_addrs: [u64; WARP_SIZE],
    scratch_lines: Vec<u64>,
    scratch_warps: Vec<usize>,
    scratch_candidates: Vec<usize>,
    scratch_ready: Vec<usize>,
    /// Predecoded instruction metadata, `decoded[kernel][pc]` — indexed
    /// exactly like [`PcTable`]'s rows.
    decoded: Vec<Vec<InstrMeta>>,
}

impl SmCore {
    /// Build an SM running kernels from `program`.
    pub fn new(config: SmConfig, program: Arc<Program>) -> Self {
        SmCore {
            pc_stats: config.attribution.then(|| Box::new(PcTable::new(&program))),
            decoded: program
                .iter()
                .map(|(_, k)| {
                    k.instrs
                        .iter()
                        .map(|i| InstrMeta::new(i, &config.lat))
                        .collect()
                })
                .collect(),
            l1: Cache::new(config.l1),
            cc: Cache::new(config.const_cache),
            tc: Cache::new(config.tex_cache),
            rr_cursor: vec![0; config.schedulers as usize],
            gto_current: vec![None; config.schedulers as usize],
            config,
            program,
            slots: Vec::new(),
            free_slots: Vec::new(),
            warps: Vec::new(),
            free_warps: Vec::new(),
            live_warps: 0,
            used_threads: 0,
            used_regs: 0,
            used_smem: 0,
            used_slots: 0,
            outstanding: HashMap::new(),
            waiters: HashMap::new(),
            next_req_id: 0,
            age_counter: 0,
            stats: SmStats::default(),
            scratch_addrs: [0; WARP_SIZE],
            scratch_lines: Vec::new(),
            scratch_warps: Vec::new(),
            scratch_candidates: Vec::new(),
            scratch_ready: Vec::new(),
        }
    }

    /// The SM's configuration.
    pub fn config(&self) -> &SmConfig {
        &self.config
    }

    /// True when no warps are resident.
    pub fn is_idle(&self) -> bool {
        self.live_warps == 0
    }

    /// True when requests are still outstanding to the memory system.
    pub fn has_outstanding(&self) -> bool {
        !self.outstanding.is_empty()
    }

    /// Number of live CTAs.
    pub fn resident_ctas(&self) -> u32 {
        self.used_slots
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// Take and reset statistics.
    pub fn take_stats(&mut self) -> SmStats {
        std::mem::take(&mut self.stats)
    }

    /// Per-PC attribution table; `None` unless
    /// [`SmConfig::attribution`] was set at construction.
    pub fn pc_table(&self) -> Option<&PcTable> {
        self.pc_stats.as_deref()
    }

    /// Zero the per-PC attribution table (no-op when attribution is off).
    pub fn reset_pc_table(&mut self) {
        if let Some(t) = self.pc_stats.as_deref_mut() {
            *t = PcTable::new(&self.program);
        }
    }

    /// L1 data-cache statistics (Figure 13).
    pub fn l1_stats(&self) -> &CacheStats {
        self.l1.stats()
    }

    /// Flush all caches and reset their statistics (between kernel launches,
    /// modelling the locality loss at `cudaMemcpy` boundaries).
    pub fn flush_caches(&mut self) {
        self.l1.flush();
        self.cc.flush();
        self.tc.flush();
    }

    /// Reset cache statistics only.
    pub fn reset_cache_stats(&mut self) {
        self.l1.reset_stats();
        self.cc.reset_stats();
        self.tc.reset_stats();
    }

    /// Attempt to place a CTA; returns `false` when resources don't fit.
    pub fn try_launch_cta(&mut self, cfg: CtaConfig) -> bool {
        let kernel = match self.program.get(cfg.kernel_id) {
            Some(k) => k,
            None => return false,
        };
        let threads = cfg.dims.threads_per_cta();
        let regs = kernel.regs_per_thread * threads;
        let smem = kernel.smem_per_cta;
        if self.used_slots + 1 > self.config.max_ctas
            || self.used_threads + threads > self.config.max_threads
            || self.used_regs + regs > self.config.registers
            || self.used_smem + smem > self.config.smem_bytes
        {
            return false;
        }
        let regs_per_thread = kernel.regs_per_thread;
        let warps_per_cta = cfg.dims.warps_per_cta();
        let slot_idx = self.free_slots.pop().unwrap_or_else(|| {
            self.slots.push(CtaSlot {
                cfg: cfg.clone(),
                smem: Vec::new(),
                warps: Vec::new(),
                running: 0,
                barrier_count: 0,
                children: 0,
                live: false,
                threads: 0,
                regs: 0,
                smem_bytes: 0,
            });
            self.slots.len() - 1
        });

        let mut warp_ids = Vec::with_capacity(warps_per_cta as usize);
        for w in 0..warps_per_cta {
            let assigned_before = w * WARP_SIZE as u32;
            let active = lane_mask((threads - assigned_before.min(threads)).min(WARP_SIZE as u32));
            let warp = Warp::new(regs_per_thread, active, slot_idx, w, self.age_counter);
            self.age_counter += 1;
            let widx = match self.free_warps.pop() {
                Some(i) => {
                    self.warps[i] = Some(warp);
                    i
                }
                None => {
                    self.warps.push(Some(warp));
                    self.warps.len() - 1
                }
            };
            warp_ids.push(widx);
        }
        self.live_warps += warps_per_cta;

        let slot = &mut self.slots[slot_idx];
        slot.cfg = cfg;
        slot.smem = vec![0; smem as usize];
        slot.warps = warp_ids;
        slot.running = warps_per_cta;
        slot.barrier_count = 0;
        slot.children = 0;
        slot.live = true;
        slot.threads = threads;
        slot.regs = regs;
        slot.smem_bytes = smem;

        self.used_threads += threads;
        self.used_regs += regs;
        self.used_smem += smem;
        self.used_slots += 1;
        true
    }

    /// Memory-system response for request `id` issued earlier.
    pub fn mem_response(&mut self, id: u64, now: u64) {
        match self.outstanding.remove(&id) {
            Some(RespRoute::LoadFill { tex, line }) => {
                let cache = if tex { &mut self.tc } else { &mut self.l1 };
                cache.fill(line * LINE_BYTES, false);
                if let Some(list) = self.waiters.remove(&(tex, line)) {
                    for (widx, reg) in list {
                        if let Some(w) = self.warps[widx].as_mut() {
                            let i = reg.0 as usize;
                            w.reg_pending[i] = w.reg_pending[i].saturating_sub(1);
                            if w.reg_pending[i] == 0 {
                                w.reg_ready[i] = now + 1;
                            }
                        }
                    }
                }
            }
            Some(RespRoute::Atomic { warp, reg }) => {
                if let Some(w) = self.warps[warp].as_mut() {
                    let i = reg.0 as usize;
                    w.reg_pending[i] = w.reg_pending[i].saturating_sub(1);
                    if w.reg_pending[i] == 0 {
                        w.reg_ready[i] = now + 1;
                    }
                }
            }
            None => {}
        }
    }

    /// A child grid launched by CTA `slot` has completed. `parent_grid`
    /// guards against slot reuse: the notification is dropped unless the
    /// slot still belongs to that grid (pass `None` to skip the check in
    /// tests).
    pub fn child_grid_done(&mut self, slot: usize, parent_grid: Option<u64>) {
        if slot >= self.slots.len() || !self.slots[slot].live {
            return;
        }
        if let Some(h) = parent_grid {
            if self.slots[slot].cfg.grid_handle != h {
                return;
            }
        }
        let s = &mut self.slots[slot];
        s.children = s.children.saturating_sub(1);
        if s.children == 0 {
            for &widx in &s.warps {
                if let Some(w) = self.warps[widx].as_mut() {
                    if w.block == WarpBlock::Dsync {
                        w.block = WarpBlock::None;
                    }
                }
            }
        }
    }

    /// Advance one cycle.
    ///
    /// The per-cycle phase is a pure function of SM-local state plus the
    /// SM's [`SmPorts`]: inbound replies are drained first, then the
    /// schedulers issue against `gmem` as an immutable cycle-start snapshot,
    /// logging stores/atomics into `ports.out.mem_ops` for the device to
    /// commit serially via [`SmCore::commit_mem_ops`].
    ///
    /// `device_busy` tells the SM that the device is mid-launch or draining
    /// (empty cycles then count as "functional done" rather than idle).
    pub fn tick(&mut self, now: u64, gmem: &dyn GlobalMem, device_busy: bool, ports: &mut SmPorts) {
        for id in ports.replies.drain(..) {
            self.mem_response(id, now);
        }
        let out = &mut ports.out;
        self.stats.cycles += 1;
        let nsched = self.config.schedulers as usize;
        if self.live_warps == 0 {
            // An SM waiting on kernel setup/drain stalls as "functional
            // done" (the paper's NvB signature); an SM with no work at all
            // is unused, not stalled, and contributes nothing to Figure 5.
            if device_busy {
                self.stats
                    .stalls
                    .add(StallReason::FunctionalDone, nsched as u64);
                if let Some(t) = self.pc_stats.as_deref_mut() {
                    t.record_unattributed(StallReason::FunctionalDone, nsched as u64);
                }
            }
            return;
        }
        let mut fallback: Option<(StallReason, Option<usize>)> = None;
        for sched in 0..nsched {
            match self.pick(sched, now) {
                Ok(widx) => self.issue(widx, now, gmem, out),
                Err((reason, rep)) => {
                    // A scheduler with no warps of its own inherits the
                    // SM-wide dominant wait reason so small kernels don't
                    // drown Figure 5 in artificial idle slots.
                    let (r, rep) = if reason == StallReason::Idle && self.live_warps > 0 {
                        if fallback.is_none() {
                            fallback = Some(self.global_wait_reason(now));
                        }
                        fallback.unwrap_or((reason, rep))
                    } else {
                        (reason, rep)
                    };
                    self.stats.stalls.add(r, 1);
                    if self.pc_stats.is_some() {
                        self.record_pc_stall(r, rep);
                    }
                }
            }
        }
    }

    /// Charge one stall cycle of `reason` to the representative blocked
    /// warp's current PC, or to the unattributed bucket when there is none.
    fn record_pc_stall(&mut self, reason: StallReason, rep: Option<usize>) {
        self.record_pc_stall_cycles(reason, rep, 1);
    }

    /// [`SmCore::record_pc_stall`] generalized to a whole span of `cycles`
    /// identical stall cycles, used when fast-forward credits a skipped
    /// span in one call.
    fn record_pc_stall_cycles(&mut self, reason: StallReason, rep: Option<usize>, cycles: u64) {
        let located = rep.and_then(|widx| {
            let w = self.warps.get(widx)?.as_ref()?;
            let pc = w.stack.last()?.pc;
            Some((self.slots[w.cta_slot].cfg.kernel_id, pc))
        });
        let Some(t) = self.pc_stats.as_deref_mut() else {
            return;
        };
        match located {
            Some((kid, pc)) => t.record_stall_cycles(kid, pc, reason, cycles),
            None => t.record_unattributed(reason, cycles),
        }
    }

    /// Conservative next cycle (≥ `c0`) at which this SM could issue an
    /// instruction or change its stall classification, assuming no external
    /// event (memory reply, child-grid completion, CTA dispatch) arrives
    /// before then — the engine bounds those separately. Returns `c0` when
    /// some warp is ready right at `c0`, and `u64::MAX` when nothing on
    /// this SM has a timed wake-up (idle, or blocked only on external
    /// events).
    ///
    /// May pop exhausted divergence-stack entries ([`Warp::reconverge`]),
    /// exactly as the first scheduling pass at `c0` would; the pops are
    /// idempotent, so SM state afterwards is identical to what a normal
    /// tick at `c0` would have observed.
    pub fn next_wake(&mut self, c0: u64) -> u64 {
        if self.live_warps == 0 {
            return u64::MAX;
        }
        let mut min = u64::MAX;
        for widx in 0..self.warps.len() {
            let kid = {
                let Some(w) = self.warps[widx].as_ref() else {
                    continue;
                };
                if w.done {
                    continue;
                }
                self.slots[w.cta_slot].cfg.kernel_id
            };
            let pc = {
                let w = self.warps[widx].as_mut().expect("warp checked above");
                match w.reconverge() {
                    Some(e) => e.pc,
                    None => continue,
                }
            };
            let meta = self.decoded.get(kid.0 as usize).and_then(|k| k.get(pc));
            let w = self.warps[widx].as_ref().expect("warp checked above");
            if w.block != WarpBlock::None {
                // Barrier/Dsync/Trapped: released only by another warp's
                // issue or an external completion; no timed boundary.
                continue;
            }
            let Some(meta) = meta else {
                // PC off the end of the stream: ready to trap at once.
                return c0;
            };
            if w.next_issue_at > c0 {
                // Classification is Control/Data until the issue window
                // reopens; registers are re-examined only from then on.
                min = min.min(w.next_issue_at);
                continue;
            }
            let mut pending = false;
            let mut wake = u64::MAX;
            for r in meta.srcs.iter().flatten().copied().chain(meta.dst) {
                let i = r.0 as usize;
                if w.reg_pending[i] > 0 {
                    // Awaiting memory fills: wakes only via `mem_response`,
                    // which the engine bounds by its event queue.
                    pending = true;
                    break;
                }
                if w.reg_ready[i] > c0 {
                    wake = wake.min(w.reg_ready[i]);
                }
            }
            if pending {
                continue;
            }
            if wake == u64::MAX {
                // No scoreboard hazard: the warp is ready at c0.
                return c0;
            }
            min = min.min(wake);
        }
        min
    }

    /// Credit `span` fast-forwarded cycles starting at `c0` as if
    /// [`SmCore::tick`] had run each one: cycle counters advance and every
    /// scheduler records the same stall it recorded (or would record) at
    /// `c0`, multiplied by `span`.
    ///
    /// Sound only when the engine has proven the span dead — `next_wake(c0)`
    /// exceeds `c0 + span - 1` for this SM and no external event lands
    /// inside the span — then every warp keeps its exact classification for
    /// the whole span and per-cycle accounting telescopes into one
    /// multiplication.
    pub fn skip_cycles(&mut self, c0: u64, device_busy: bool, span: u64) {
        self.stats.cycles += span;
        let nsched = self.config.schedulers as usize;
        if self.live_warps == 0 {
            if device_busy {
                self.stats
                    .stalls
                    .add(StallReason::FunctionalDone, nsched as u64 * span);
                if let Some(t) = self.pc_stats.as_deref_mut() {
                    t.record_unattributed(StallReason::FunctionalDone, nsched as u64 * span);
                }
            }
            return;
        }
        let mut fallback: Option<(StallReason, Option<usize>)> = None;
        for sched in 0..nsched {
            let (reason, rep) = match self.pick(sched, c0) {
                Ok(_) => {
                    debug_assert!(false, "fast-forward skipped an issuing cycle");
                    continue;
                }
                Err(e) => e,
            };
            let (r, rep) = if reason == StallReason::Idle && self.live_warps > 0 {
                if fallback.is_none() {
                    fallback = Some(self.global_wait_reason(c0));
                }
                fallback.unwrap_or((reason, rep))
            } else {
                (reason, rep)
            };
            self.stats.stalls.add(r, span);
            if self.pc_stats.is_some() {
                self.record_pc_stall_cycles(r, rep, span);
            }
        }
    }

    /// Would [`SmCore::try_launch_cta`] succeed right now for a CTA of
    /// `kernel_id` with `threads` threads? Pure resource probe with no side
    /// effects, used by the engine's fast-forward to prove that a pending
    /// grid cannot dispatch until resources free up.
    pub fn can_accept(&self, kernel_id: KernelId, threads: u32) -> bool {
        let Some(kernel) = self.program.get(kernel_id) else {
            return false;
        };
        let regs = kernel.regs_per_thread * threads;
        let smem = kernel.smem_per_cta;
        self.used_slots < self.config.max_ctas
            && self.used_threads + threads <= self.config.max_threads
            && self.used_regs + regs <= self.config.registers
            && self.used_smem + smem <= self.config.smem_bytes
    }

    /// Apply this cycle's deferred stores/atomics to `gmem`, in issue order.
    ///
    /// Called by the device once per cycle per SM, **after** every SM has
    /// ticked, in SM-index order — the deterministic merge order that makes
    /// multi-threaded simulation bit-identical to serial. Atomics write the
    /// old value back to the issuing warp's destination lane here; register
    /// scoreboarding (set at issue) guarantees no consumer can read it
    /// before the next cycle.
    pub fn commit_mem_ops(&mut self, gmem: &mut dyn GlobalMem, ops: &mut Vec<MemOp>) {
        for op in ops.drain(..) {
            match op {
                MemOp::Store { addr, width, value } => gmem.write(addr, width, value),
                MemOp::Atomic {
                    op,
                    addr,
                    src,
                    cas,
                    warp,
                    dst,
                    lane,
                } => {
                    let old = gmem.atom(op, addr, src, cas);
                    if let Some(w) = self.warps.get_mut(warp).and_then(|w| w.as_mut()) {
                        w.write(dst, lane, old);
                    }
                }
            }
        }
    }

    /// Priority of a blocking wait kind for stall classification: the
    /// dominant reason is the highest-ranked kind over the candidate set,
    /// attributed to the first warp that reaches that rank.
    fn wait_rank(k: WaitKind) -> u8 {
        match k {
            WaitKind::Memory => 3,
            WaitKind::Control => 2,
            WaitKind::Data => 1,
            WaitKind::Sync | WaitKind::Ready => 0,
        }
    }

    /// Dominant wait reason across all live warps (Memory over Control
    /// over Data over Barrier) plus the representative warp it is
    /// attributed to, used for schedulers with no warps of their own.
    fn global_wait_reason(&mut self, now: u64) -> (StallReason, Option<usize>) {
        let mut best: Option<(WaitKind, usize)> = None;
        for i in 0..self.warps.len() {
            match self.classify(i, now) {
                Some(WaitKind::Ready) | None => {}
                Some(k) => {
                    if best.is_none_or(|(k0, _)| Self::wait_rank(k0) < Self::wait_rank(k)) {
                        best = Some((k, i));
                    }
                }
            }
        }
        match best {
            Some((WaitKind::Memory, i)) => (StallReason::MemLatency, Some(i)),
            Some((WaitKind::Control, i)) => (StallReason::ControlHazard, Some(i)),
            Some((WaitKind::Data, i)) => (StallReason::DataHazard, Some(i)),
            Some((WaitKind::Sync, i)) => (StallReason::Barrier, Some(i)),
            // All live warps ready but owned by other schedulers: the slot
            // is structurally idle.
            _ => (StallReason::Idle, None),
        }
    }

    /// Classify a warp's readiness at `now`; `None` when not a candidate.
    fn classify(&mut self, widx: usize, now: u64) -> Option<WaitKind> {
        let kid = {
            let w = self.warps[widx].as_ref()?;
            if w.done {
                return None;
            }
            self.slots[w.cta_slot].cfg.kernel_id
        };
        let pc = {
            let w = self.warps[widx].as_mut()?;
            w.reconverge()?.pc
        };
        match self.decoded.get(kid.0 as usize).and_then(|k| k.get(pc)) {
            Some(meta) => {
                let (srcs, dst) = (meta.srcs, meta.dst);
                let w = self.warps[widx].as_ref()?;
                Some(w.wait_kind(&srcs, dst, now))
            }
            // PC fell off the instruction stream: report the warp as
            // ready so the scheduler picks it and `issue` can raise the
            // InvalidPc trap (unless it is already parked/trapped).
            None => {
                let w = self.warps[widx].as_ref()?;
                Some(if w.block == WarpBlock::None {
                    WaitKind::Ready
                } else {
                    WaitKind::Sync
                })
            }
        }
    }

    /// Scheduler `sched` picks a warp, or reports its stall reason plus the
    /// representative blocked warp the stall is attributed to.
    fn pick(&mut self, sched: usize, now: u64) -> Result<usize, (StallReason, Option<usize>)> {
        let nsched = self.config.schedulers as usize;
        // Reusable scratch: candidate and ready sets are rebuilt every
        // cycle but never allocate after warm-up.
        let mut candidates = std::mem::take(&mut self.scratch_candidates);
        let mut ready = std::mem::take(&mut self.scratch_ready);
        candidates.clear();
        ready.clear();
        for i in (sched..self.warps.len()).step_by(nsched.max(1)) {
            if self.warps[i].as_ref().map(|w| !w.done).unwrap_or(false) {
                candidates.push(i);
            }
        }
        let result = self.pick_from(sched, &candidates, &mut ready, now);
        self.scratch_candidates = candidates;
        self.scratch_ready = ready;
        result
    }

    fn pick_from(
        &mut self,
        sched: usize,
        candidates: &[usize],
        ready: &mut Vec<usize>,
        now: u64,
    ) -> Result<usize, (StallReason, Option<usize>)> {
        if candidates.is_empty() {
            return Err((StallReason::Idle, None));
        }

        let mut best_wait: Option<(WaitKind, usize)> = None;
        for &i in candidates {
            match self.classify(i, now) {
                Some(WaitKind::Ready) => ready.push(i),
                Some(k)
                    if best_wait.is_none_or(|(k0, _)| Self::wait_rank(k0) < Self::wait_rank(k)) =>
                {
                    best_wait = Some((k, i));
                }
                _ => {}
            }
        }
        if ready.is_empty() {
            return Err(match best_wait {
                Some((WaitKind::Memory, i)) => (StallReason::MemLatency, Some(i)),
                Some((WaitKind::Control, i)) => (StallReason::ControlHazard, Some(i)),
                Some((WaitKind::Data, i)) => (StallReason::DataHazard, Some(i)),
                Some((WaitKind::Sync, i)) => (StallReason::Barrier, Some(i)),
                _ => (StallReason::Idle, None),
            });
        }

        let chosen = match self.config.policy {
            SchedPolicy::Lrr | SchedPolicy::TwoLevel => {
                // Two-level approximates to LRR over the ready set here
                // because memory-blocked warps are already excluded from
                // `ready` (demotion) — the active-set cap is modelled by
                // rotating through at most `two_level_active` of them.
                let cap = if self.config.policy == SchedPolicy::TwoLevel {
                    self.config.two_level_active as usize
                } else {
                    ready.len()
                };
                let window = &ready[..ready.len().min(cap.max(1))];
                let cursor = self.rr_cursor[sched];
                let pos = window.iter().position(|&w| w > cursor).unwrap_or(0);
                let w = window[pos];
                self.rr_cursor[sched] = w;
                w
            }
            SchedPolicy::Gto => {
                if let Some(cur) = self.gto_current[sched] {
                    if ready.contains(&cur) {
                        cur
                    } else {
                        let w = self.oldest(ready);
                        self.gto_current[sched] = Some(w);
                        w
                    }
                } else {
                    let w = self.oldest(ready);
                    self.gto_current[sched] = Some(w);
                    w
                }
            }
            SchedPolicy::Old => self.oldest(ready),
        };
        Ok(chosen)
    }

    fn oldest(&self, ready: &[usize]) -> usize {
        *ready
            .iter()
            .min_by_key(|&&i| self.warps[i].as_ref().map(|w| w.age).unwrap_or(u64::MAX))
            .expect("ready set nonempty")
    }

    #[inline]
    fn opval(w: &Warp, op: Operand, lane: usize) -> u64 {
        match op {
            Operand::Reg(r) => w.read(r, lane),
            Operand::Imm(v) => v,
        }
    }

    fn sreg_value(cfg: &CtaConfig, warp_in_cta: u32, lane: usize, sreg: SpecialReg) -> u64 {
        let dims = cfg.dims;
        let lin = warp_in_cta as u64 * WARP_SIZE as u64 + lane as u64;
        let (cx, cy, _cz) = dims.cta;
        let tid_x = lin % cx as u64;
        let tid_y = (lin / cx as u64) % cy as u64;
        let tid_z = lin / (cx as u64 * cy as u64);
        let (gx, gy, _gz) = dims.grid;
        let cta_x = cfg.cta_linear % gx as u64;
        let cta_y = (cfg.cta_linear / gx as u64) % gy as u64;
        let cta_z = cfg.cta_linear / (gx as u64 * gy as u64);
        match sreg {
            SpecialReg::TidX => tid_x,
            SpecialReg::TidY => tid_y,
            SpecialReg::TidZ => tid_z,
            SpecialReg::CtaIdX => cta_x,
            SpecialReg::CtaIdY => cta_y,
            SpecialReg::CtaIdZ => cta_z,
            SpecialReg::NTidX => dims.cta.0 as u64,
            SpecialReg::NTidY => dims.cta.1 as u64,
            SpecialReg::NTidZ => dims.cta.2 as u64,
            SpecialReg::NCtaIdX => dims.grid.0 as u64,
            SpecialReg::NCtaIdY => dims.grid.1 as u64,
            SpecialReg::NCtaIdZ => dims.grid.2 as u64,
            SpecialReg::LaneId => lane as u64,
            SpecialReg::WarpId => warp_in_cta as u64,
        }
    }

    fn param_read(params: &[u64], byte_addr: u64, width: Width) -> u64 {
        let word = (byte_addr / 8) as usize;
        let shift = (byte_addr % 8) * 8;
        let v = params.get(word).copied().unwrap_or(0) >> shift;
        match width {
            Width::B8 => v & 0xFF,
            Width::B16 => v & 0xFFFF,
            Width::B32 => v & 0xFFFF_FFFF,
            Width::B64 => v,
        }
    }

    fn bytes_read(data: &[u8], addr: u64, width: Width) -> u64 {
        let mut v: u64 = 0;
        for i in 0..width.bytes() {
            let b = data.get((addr + i) as usize).copied().unwrap_or(0);
            v |= (b as u64) << (8 * i);
        }
        v
    }

    fn bytes_write(data: &mut [u8], addr: u64, width: Width, value: u64) {
        for i in 0..width.bytes() {
            if let Some(slot) = data.get_mut((addr + i) as usize) {
                *slot = (value >> (8 * i)) as u8;
            }
        }
    }

    /// Per-lane local-memory remap into the grid's local arena.
    ///
    /// Like real GPUs, local memory is interleaved per warp at 8-byte
    /// granularity (`[warp][granule][lane]`): when all lanes of a warp
    /// access the same local offset — the common case for spilled arrays —
    /// the 32 lane addresses are contiguous and coalesce into two 128-byte
    /// transactions instead of 32.
    fn local_addr(
        interleave: bool,
        cfg: &CtaConfig,
        warp_in_cta: u32,
        lane: usize,
        addr: u64,
    ) -> u64 {
        if !interleave {
            // Ablation layout: contiguous per-thread arenas. Same-offset
            // accesses across a warp land `local_stride` bytes apart and
            // cannot coalesce.
            let tid = warp_in_cta as u64 * WARP_SIZE as u64 + lane as u64;
            let thread_global = cfg.cta_linear * cfg.dims.threads_per_cta() as u64 + tid;
            return cfg.local_base + thread_global * cfg.local_stride + addr;
        }
        let warp_global = cfg.cta_linear * cfg.dims.warps_per_cta() as u64 + warp_in_cta as u64;
        let granule = addr / 8;
        let rem = addr % 8;
        let warp_stride = cfg.local_stride * WARP_SIZE as u64;
        cfg.local_base
            + warp_global * warp_stride
            + granule * (8 * WARP_SIZE as u64)
            + lane as u64 * 8
            + rem
    }

    /// Park warp `widx` as trapped and report the guest fault.
    #[allow(clippy::too_many_arguments)]
    fn trap(
        &mut self,
        widx: usize,
        slot_idx: usize,
        kind: FaultKind,
        pc: usize,
        lane_mask: u32,
        addr: Option<u64>,
        out: &mut TickOutput,
    ) {
        let kid = self.slots[slot_idx].cfg.kernel_id;
        let cta_linear = self.slots[slot_idx].cfg.cta_linear;
        let instr = self
            .program
            .get(kid)
            .and_then(|k| k.instrs.get(pc))
            .map(|i| i.to_string())
            .unwrap_or_else(|| "<no instruction>".into());
        let warp_in_cta = self.warps[widx]
            .as_ref()
            .map(|w| w.warp_in_cta)
            .unwrap_or(0);
        if let Some(w) = self.warps[widx].as_mut() {
            w.block = WarpBlock::Trapped;
        }
        out.traps.push(Trap {
            kind,
            kernel: kid,
            slot: slot_idx,
            cta_linear,
            warp: widx,
            warp_in_cta,
            lane_mask,
            pc,
            instr,
            addr,
        });
    }

    /// First faulting lane's (kind, address) plus the mask of all faulting
    /// lanes, checking the raw per-lane addresses against `gmem`.
    fn check_lanes(
        gmem: &dyn GlobalMem,
        addrs: &[u64; WARP_SIZE],
        mask: u32,
        width: Width,
        store: bool,
    ) -> Option<(FaultKind, u64, u32)> {
        let mut first: Option<(FaultKind, u64)> = None;
        let mut faulting = 0u32;
        for lane in lanes(mask) {
            if let Some(k) = gmem.check(addrs[lane], width, store) {
                faulting |= 1 << lane;
                if first.is_none() {
                    first = Some((k, addrs[lane]));
                }
            }
        }
        first.map(|(k, a)| (k, a, faulting))
    }

    /// Shared-memory variant of [`SmCore::check_lanes`]: any access ending
    /// beyond `smem_len` overflows the CTA's allocation.
    fn check_shared_lanes(
        addrs: &[u64; WARP_SIZE],
        mask: u32,
        width: Width,
        smem_len: usize,
    ) -> Option<(u64, u32)> {
        let mut first: Option<u64> = None;
        let mut faulting = 0u32;
        for lane in lanes(mask) {
            if addrs[lane] + width.bytes() > smem_len as u64 {
                faulting |= 1 << lane;
                if first.is_none() {
                    first = Some(addrs[lane]);
                }
            }
        }
        first.map(|a| (a, faulting))
    }

    /// Discard all resident work: CTAs, warps, outstanding requests and
    /// MSHR waiters. The device calls this after a guest fault to return
    /// the SM to a clean idle state; caches and statistics survive so they
    /// stay inspectable post-mortem, and late memory responses for cleared
    /// requests are dropped harmlessly.
    pub fn abort_workload(&mut self) {
        self.slots.clear();
        self.free_slots.clear();
        self.warps.clear();
        self.free_warps.clear();
        self.live_warps = 0;
        self.used_threads = 0;
        self.used_regs = 0;
        self.used_smem = 0;
        self.used_slots = 0;
        self.outstanding.clear();
        self.waiters.clear();
        for c in &mut self.rr_cursor {
            *c = 0;
        }
        for g in &mut self.gto_current {
            *g = None;
        }
    }

    /// Reset the warp-scheduler cursors (round-robin position and GTO
    /// sticky warp) to their power-on state. The device calls this at
    /// canonical kernel boundaries so scheduling decisions inside a grid
    /// never depend on where the previous grid happened to leave the
    /// cursors; resident work is unaffected (the SM must be idle).
    pub fn reset_schedulers(&mut self) {
        for c in &mut self.rr_cursor {
            *c = 0;
        }
        for g in &mut self.gto_current {
            *g = None;
        }
    }

    /// Requests outstanding to the memory system.
    pub fn outstanding_requests(&self) -> usize {
        self.outstanding.len()
    }

    /// Blocked-state snapshot of every resident warp, tagged with the
    /// caller-supplied device-wide SM index `sm`. Feeds the deadlock report.
    pub fn warp_report(&self, sm: usize) -> Vec<WarpReport> {
        let mut reports = Vec::new();
        for (widx, w) in self.warps.iter().enumerate() {
            let Some(w) = w else { continue };
            let slot = &self.slots[w.cta_slot];
            let kernel = self
                .program
                .get(slot.cfg.kernel_id)
                .map(|k| k.name.clone())
                .unwrap_or_else(|| format!("{}", slot.cfg.kernel_id));
            let pending: u32 = w.reg_pending.iter().map(|&p| p as u32).sum();
            let wait = if w.done {
                WarpWait::Done
            } else {
                match w.block {
                    WarpBlock::Barrier => WarpWait::Barrier {
                        arrived: slot.barrier_count,
                        running: slot.running,
                    },
                    WarpBlock::Dsync => WarpWait::Dsync {
                        children: slot.children,
                    },
                    WarpBlock::Trapped => WarpWait::Trapped,
                    WarpBlock::None if pending > 0 => WarpWait::Memory { fills: pending },
                    WarpBlock::None => WarpWait::Runnable,
                }
            };
            reports.push(WarpReport {
                sm,
                warp: widx,
                kernel,
                cta: slot.cfg.cta_linear,
                warp_in_cta: w.warp_in_cta,
                pc: w.stack.last().map(|e| e.pc),
                wait,
            });
        }
        reports
    }
}
