//! Functional execution stage of the SM: instruction issue plus the
//! load/store/atomic paths with coalescing and guest-fault checks.
//!
//! Everything here is a pure function of SM-local state plus the cycle-start
//! memory snapshot (`&dyn GlobalMem`, reads only): functional stores and
//! global atomics are **deferred** into [`TickOutput::mem_ops`] and committed
//! by the device after every SM has ticked, in deterministic merge order —
//! SM index first, then issue order within the SM. This is what lets SMs
//! tick concurrently with bit-identical results.

use std::sync::Arc;

use ggpu_isa::{AtomOp, FaultKind, Instr, Kernel, Operand, Reg, Space, Width, WARP_SIZE};
use ggpu_mem::{CacheOutcome, LINE_BYTES};

use crate::coalesce::{bank_conflict_degree, coalesce_lines};
use crate::ports::{CompletedCta, DeviceLaunch, MemOp, MemRequest, ReqKind, TickOutput};
use crate::warp::{lanes, WarpBlock};

use super::{GlobalMem, RespRoute, SmCore};

impl SmCore {
    /// Issue one instruction from warp `widx`.
    #[allow(clippy::too_many_lines)]
    pub(super) fn issue(
        &mut self,
        widx: usize,
        now: u64,
        gmem: &dyn GlobalMem,
        out: &mut TickOutput,
    ) {
        let program = Arc::clone(&self.program);
        let (slot_idx, kid, entry) = {
            let w = self.warps[widx].as_mut().expect("issuing dead warp");
            let entry = w.reconverge().expect("issuing finished warp");
            (w.cta_slot, self.slots[w.cta_slot].cfg.kernel_id, entry)
        };
        let kernel: &Kernel = program.kernel(kid);
        let Some(instr) = kernel.instrs.get(entry.pc).cloned() else {
            // The PC fell off the end of the instruction stream (possible
            // for hand-built kernels whose last path misses `Exit`).
            self.trap(
                widx,
                slot_idx,
                FaultKind::InvalidPc,
                entry.pc,
                entry.mask,
                None,
                out,
            );
            return;
        };
        let mask = entry.mask;
        let nlanes = mask.count_ones();
        let pc = entry.pc;
        let lat = self.config.lat;
        // Predecoded result latency for the directly-executed arms below —
        // no per-issue re-match of the op class.
        let meta = self.decoded[kid.0 as usize][pc];

        self.stats.record_issue(instr.class(), nlanes);
        out.issued += 1;
        if let Some(space) = instr.mem_space() {
            self.stats.record_mem(space);
        }
        if let Some(t) = self.pc_stats.as_deref_mut() {
            t.record_issue(kid, pc, nlanes);
        }

        // Default post-issue state; overridden below where needed.
        {
            let w = self.warps[widx]
                .as_mut()
                .expect("scheduled warp is resident");
            w.next_issue_at = now + 1;
            w.issue_block_is_control = false;
        }

        match instr {
            Instr::Alu { op, dst, a, b } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let av = Self::opval(w, a, lane);
                    let bv = Self::opval(w, b, lane);
                    w.write(dst, lane, op.eval(av, bv));
                }
                w.reg_ready[dst.0 as usize] = now + meta.lat;
                if meta.f64_pen {
                    w.next_issue_at = now + lat.f64_interval;
                }
                w.advance_pc();
            }
            Instr::Fma { f64, dst, a, b, c } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let av = Self::opval(w, a, lane);
                    let bv = Self::opval(w, b, lane);
                    let cv = Self::opval(w, c, lane);
                    let r = if f64 {
                        let x = f64::from_bits(av);
                        let y = f64::from_bits(bv);
                        let z = f64::from_bits(cv);
                        x.mul_add(y, z).to_bits()
                    } else {
                        let x = f32::from_bits(av as u32);
                        let y = f32::from_bits(bv as u32);
                        let z = f32::from_bits(cv as u32);
                        x.mul_add(y, z).to_bits() as u64
                    };
                    w.write(dst, lane, r);
                }
                w.reg_ready[dst.0 as usize] = now + meta.lat;
                if meta.f64_pen {
                    w.next_issue_at = now + lat.f64_interval;
                }
                w.advance_pc();
            }
            Instr::Mov { dst, src } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let v = Self::opval(w, src, lane);
                    w.write(dst, lane, v);
                }
                w.reg_ready[dst.0 as usize] = now + meta.lat;
                w.advance_pc();
            }
            Instr::Sel {
                dst,
                cond,
                if_true,
                if_false,
            } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let c = w.read(cond, lane);
                    let v = if c != 0 {
                        Self::opval(w, if_true, lane)
                    } else {
                        Self::opval(w, if_false, lane)
                    };
                    w.write(dst, lane, v);
                }
                w.reg_ready[dst.0 as usize] = now + meta.lat;
                w.advance_pc();
            }
            Instr::SetP {
                pred,
                cmp,
                ty,
                a,
                b,
            } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let av = Self::opval(w, a, lane);
                    let bv = Self::opval(w, b, lane);
                    w.write(pred, lane, cmp.eval(ty, av, bv) as u64);
                }
                w.reg_ready[pred.0 as usize] = now + meta.lat;
                w.advance_pc();
            }
            Instr::Cvt { kind, dst, src } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    let v = Self::opval(w, src, lane);
                    w.write(dst, lane, kind.eval(v));
                }
                w.reg_ready[dst.0 as usize] = now + meta.lat;
                w.advance_pc();
            }
            Instr::Sreg { dst, sreg } => {
                let cfg = &self.slots[slot_idx].cfg;
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                let wic = w.warp_in_cta;
                for lane in lanes(mask) {
                    w.write(dst, lane, Self::sreg_value(cfg, wic, lane, sreg));
                }
                w.reg_ready[dst.0 as usize] = now + meta.lat;
                w.advance_pc();
            }
            Instr::Ld {
                space,
                width,
                dst,
                addr,
                offset,
            } => {
                self.exec_load(
                    widx, slot_idx, pc, space, width, dst, addr, offset, now, gmem, out,
                );
            }
            Instr::St {
                space,
                width,
                src,
                addr,
                offset,
            } => {
                self.exec_store(
                    widx, slot_idx, pc, space, width, src, addr, offset, now, gmem, out,
                );
            }
            Instr::Atom {
                op,
                space,
                dst,
                addr,
                src,
                cas_cmp,
            } => {
                self.exec_atomic(
                    widx, slot_idx, pc, op, space, dst, addr, src, cas_cmp, now, gmem, out,
                );
            }
            Instr::Bar => {
                if self.config.trap_divergent_barrier
                    && self.warps[widx]
                        .as_ref()
                        .map(|w| w.stack.len() > 1)
                        .unwrap_or(false)
                {
                    self.trap(
                        widx,
                        slot_idx,
                        FaultKind::BarrierDivergence,
                        pc,
                        mask,
                        None,
                        out,
                    );
                    return;
                }
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.advance_pc();
                    w.block = WarpBlock::Barrier;
                }
                let slot = &mut self.slots[slot_idx];
                slot.barrier_count += 1;
                if slot.barrier_count >= slot.running {
                    slot.barrier_count = 0;
                    let mut warps = std::mem::take(&mut self.scratch_warps);
                    warps.extend_from_slice(&slot.warps);
                    for &wi in &warps {
                        if let Some(w) = self.warps[wi].as_mut() {
                            if w.block == WarpBlock::Barrier {
                                w.block = WarpBlock::None;
                            }
                        }
                    }
                    warps.clear();
                    self.scratch_warps = warps;
                }
            }
            Instr::Bra {
                pred,
                target,
                reconv,
            } => {
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                let taken = match pred {
                    None => mask,
                    Some((r, expect)) => {
                        let mut t = 0u32;
                        for lane in lanes(mask) {
                            let v = w.read(r, lane) != 0;
                            if v == expect {
                                t |= 1 << lane;
                            }
                        }
                        t
                    }
                };
                w.branch(taken, target, pc + 1, reconv);
                w.next_issue_at = now + lat.branch;
                w.issue_block_is_control = true;
            }
            Instr::Launch {
                kernel,
                grid_x,
                block_x,
                params_ptr,
                param_words,
            } => {
                let mut launches = Vec::new();
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    for lane in lanes(mask) {
                        let gx = Self::opval(w, grid_x, lane).max(1) as u32;
                        let bx = Self::opval(w, block_x, lane).max(1) as u32;
                        let ptr = Self::opval(w, params_ptr, lane);
                        launches.push((gx, bx, ptr));
                    }
                    w.advance_pc();
                    // Device-side launch overhead occupies the warp.
                    w.next_issue_at = now + lat.cmem_miss.max(100);
                    w.issue_block_is_control = true;
                }
                // Parameter-block reads fault like any other global access.
                for &(_, _, ptr) in &launches {
                    for i in 0..param_words as u64 {
                        if let Some(k) = gmem.check(ptr + i * 8, Width::B64, false) {
                            self.trap(widx, slot_idx, k, pc, mask, Some(ptr + i * 8), out);
                            return;
                        }
                    }
                }
                let parent_grid = self.slots[slot_idx].cfg.grid_handle;
                for (gx, bx, ptr) in launches {
                    let mut params = Vec::with_capacity(param_words as usize);
                    for i in 0..param_words {
                        params.push(gmem.read(ptr + i as u64 * 8, Width::B64));
                    }
                    out.launches.push(DeviceLaunch {
                        kernel,
                        grid_x: gx,
                        block_x: bx,
                        params,
                        parent_slot: slot_idx,
                        parent_grid,
                    });
                    self.slots[slot_idx].children += 1;
                    self.stats.device_launches += 1;
                }
            }
            Instr::Dsync => {
                let children = self.slots[slot_idx].children;
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
                if children > 0 {
                    w.block = WarpBlock::Dsync;
                }
            }
            Instr::Exit => {
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.done = true;
                }
                self.live_warps -= 1;
                let slot = &mut self.slots[slot_idx];
                slot.running -= 1;
                if slot.running == 0 {
                    // CTA complete: free resources.
                    slot.live = false;
                    self.used_threads -= slot.threads;
                    self.used_regs -= slot.regs;
                    self.used_smem -= slot.smem_bytes;
                    self.used_slots -= 1;
                    self.stats.ctas_completed += 1;
                    let grid_handle = slot.cfg.grid_handle;
                    let warps = std::mem::take(&mut slot.warps);
                    slot.smem = Vec::new();
                    for wi in warps {
                        self.warps[wi] = None;
                        self.free_warps.push(wi);
                    }
                    self.free_slots.push(slot_idx);
                    out.completed.push(CompletedCta {
                        grid_handle,
                        slot: slot_idx,
                    });
                } else if slot.barrier_count >= slot.running && slot.barrier_count > 0 {
                    // Remaining warps were all parked at a barrier: release
                    // them rather than deadlocking.
                    slot.barrier_count = 0;
                    let mut warps = std::mem::take(&mut self.scratch_warps);
                    warps.extend_from_slice(&slot.warps);
                    for &wi in &warps {
                        if let Some(w) = self.warps[wi].as_mut() {
                            if w.block == WarpBlock::Barrier {
                                w.block = WarpBlock::None;
                            }
                        }
                    }
                    warps.clear();
                    self.scratch_warps = warps;
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_load(
        &mut self,
        widx: usize,
        slot_idx: usize,
        pc: usize,
        space: Space,
        width: Width,
        dst: Reg,
        addr: Operand,
        offset: i64,
        now: u64,
        gmem: &dyn GlobalMem,
        out: &mut TickOutput,
    ) {
        let lat = self.config.lat;
        match space {
            Space::Param => {
                let params = Arc::clone(&self.slots[slot_idx].cfg.params);
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(w.reconverge().expect("divergence stack entry").mask) {
                    let a = Self::opval(w, addr, lane).wrapping_add(offset as u64);
                    let v = Self::param_read(&params, a, width);
                    w.write(dst, lane, v);
                }
                w.reg_ready[dst.0 as usize] = now + lat.param;
                w.advance_pc();
            }
            Space::Const => {
                let cdata = Arc::clone(&self.slots[slot_idx].cfg.const_data);
                let mask;
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    for lane in lanes(mask) {
                        let a = Self::opval(w, addr, lane).wrapping_add(offset as u64);
                        self.scratch_addrs[lane] = a;
                        let v = Self::bytes_read(&cdata, a, width);
                        w.write(dst, lane, v);
                    }
                }
                // Constant cache timing: a miss pays a fixed refill penalty.
                let mut lines = std::mem::take(&mut self.scratch_lines);
                coalesce_lines(&self.scratch_addrs, mask, width.bytes(), &mut lines);
                let mut l = lat.cmem_hit;
                for &line in &lines {
                    match self.cc.access(line * LINE_BYTES, false) {
                        CacheOutcome::Hit => {}
                        _ => {
                            self.cc.fill(line * LINE_BYTES, false);
                            l = lat.cmem_miss;
                        }
                    }
                }
                self.scratch_lines = lines;
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.reg_ready[dst.0 as usize] = now + l;
                w.advance_pc();
            }
            Space::Shared => {
                let mask;
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    for lane in lanes(mask) {
                        self.scratch_addrs[lane] =
                            Self::opval(w, addr, lane).wrapping_add(offset as u64);
                    }
                }
                if let Some((a, fl)) = Self::check_shared_lanes(
                    &self.scratch_addrs,
                    mask,
                    width,
                    self.slots[slot_idx].smem.len(),
                ) {
                    self.trap(
                        widx,
                        slot_idx,
                        FaultKind::SharedMemOverflow,
                        pc,
                        fl,
                        Some(a),
                        out,
                    );
                    return;
                }
                let degree = bank_conflict_degree(&self.scratch_addrs, mask) as u64;
                self.stats.bank_conflict_cycles += degree - 1;
                let slot = &self.slots[slot_idx];
                let mut vals = [0u64; WARP_SIZE];
                for lane in lanes(mask) {
                    vals[lane] = Self::bytes_read(&slot.smem, self.scratch_addrs[lane], width);
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    w.write(dst, lane, vals[lane]);
                }
                w.reg_ready[dst.0 as usize] = now + lat.smem + (degree - 1);
                w.advance_pc();
            }
            Space::Global | Space::Local | Space::Tex => {
                let mask;
                {
                    let cfg = &self.slots[slot_idx].cfg;
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    let wic = w.warp_in_cta;
                    for lane in lanes(mask) {
                        let mut a = Self::opval(w, addr, lane).wrapping_add(offset as u64);
                        if space == Space::Local {
                            a = Self::local_addr(self.config.interleave_local, cfg, wic, lane, a);
                        }
                        self.scratch_addrs[lane] = a;
                    }
                }
                // Guest-fault check on the raw per-lane addresses, before
                // coalescing and before any functional access.
                if let Some((k, a, fl)) =
                    Self::check_lanes(gmem, &self.scratch_addrs, mask, width, false)
                {
                    self.trap(widx, slot_idx, k, pc, fl, Some(a), out);
                    return;
                }
                // Functional read from the cycle-start snapshot.
                let mut vals = [0u64; WARP_SIZE];
                for lane in lanes(mask) {
                    vals[lane] = gmem.read(self.scratch_addrs[lane], width);
                }
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    for lane in lanes(mask) {
                        w.write(dst, lane, vals[lane]);
                    }
                }
                // Timing.
                let mut lines = std::mem::take(&mut self.scratch_lines);
                coalesce_lines(&self.scratch_addrs, mask, width.bytes(), &mut lines);
                if self.config.perfect_memory {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.reg_ready[dst.0 as usize] = now + lat.l1_hit;
                } else {
                    let tex = space == Space::Tex;
                    let mut misses = 0u16;
                    let mut hits = 0u64;
                    let mut offchip = 0u64;
                    for &line in &lines {
                        let cache = if tex { &mut self.tc } else { &mut self.l1 };
                        match cache.access(line * LINE_BYTES, false) {
                            CacheOutcome::Hit => hits += 1,
                            CacheOutcome::MshrMerged => {
                                misses += 1;
                                self.waiters
                                    .entry((tex, line))
                                    .or_default()
                                    .push((widx, dst));
                            }
                            _ => {
                                misses += 1;
                                offchip += 1;
                                let id = self.next_req_id;
                                self.next_req_id += 1;
                                self.outstanding
                                    .insert(id, RespRoute::LoadFill { tex, line });
                                self.waiters
                                    .entry((tex, line))
                                    .or_default()
                                    .push((widx, dst));
                                out.mem_requests.push(MemRequest {
                                    id,
                                    addr: line * LINE_BYTES,
                                    kind: ReqKind::Load,
                                    tex,
                                });
                                self.stats.offchip_txns += 1;
                            }
                        }
                    }
                    // The LSU processes one coalesced transaction per
                    // cycle: an uncoalesced access occupies the warp's
                    // issue slot for `lines` cycles even when it hits.
                    let serialize = lines.len().saturating_sub(1) as u64;
                    if let Some(t) = self.pc_stats.as_deref_mut() {
                        let kid = self.slots[slot_idx].cfg.kernel_id;
                        if !tex {
                            t.record_l1(kid, pc, lines.len() as u64, hits);
                        }
                        t.record_txns(kid, pc, lines.len() as u64, serialize);
                        t.record_offchip(kid, pc, offchip);
                    }
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    if misses == 0 {
                        w.reg_ready[dst.0 as usize] = now + lat.l1_hit + serialize;
                    } else {
                        w.reg_pending[dst.0 as usize] += misses;
                    }
                    w.next_issue_at = w.next_issue_at.max(now + 1 + serialize);
                }
                self.scratch_lines = lines;
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_store(
        &mut self,
        widx: usize,
        slot_idx: usize,
        pc: usize,
        space: Space,
        width: Width,
        src: Operand,
        addr: Operand,
        offset: i64,
        now: u64,
        gmem: &dyn GlobalMem,
        out: &mut TickOutput,
    ) {
        let lat = self.config.lat;
        let _ = lat;
        match space {
            Space::Param | Space::Const | Space::Tex => {
                debug_assert!(false, "store to read-only space {space}");
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
            }
            Space::Shared => {
                let mask;
                let mut vals = [0u64; WARP_SIZE];
                {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    for lane in lanes(mask) {
                        self.scratch_addrs[lane] =
                            Self::opval(w, addr, lane).wrapping_add(offset as u64);
                        vals[lane] = Self::opval(w, src, lane);
                    }
                }
                if let Some((a, fl)) = Self::check_shared_lanes(
                    &self.scratch_addrs,
                    mask,
                    width,
                    self.slots[slot_idx].smem.len(),
                ) {
                    self.trap(
                        widx,
                        slot_idx,
                        FaultKind::SharedMemOverflow,
                        pc,
                        fl,
                        Some(a),
                        out,
                    );
                    return;
                }
                let degree = bank_conflict_degree(&self.scratch_addrs, mask) as u64;
                self.stats.bank_conflict_cycles += degree - 1;
                let slot = &mut self.slots[slot_idx];
                for lane in lanes(mask) {
                    Self::bytes_write(&mut slot.smem, self.scratch_addrs[lane], width, vals[lane]);
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.next_issue_at = now + 1 + (degree - 1);
                w.advance_pc();
            }
            Space::Global | Space::Local => {
                let mask;
                let mut vals = [0u64; WARP_SIZE];
                {
                    let cfg = &self.slots[slot_idx].cfg;
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    mask = w.reconverge().expect("divergence stack entry").mask;
                    let wic = w.warp_in_cta;
                    for lane in lanes(mask) {
                        let mut a = Self::opval(w, addr, lane).wrapping_add(offset as u64);
                        if space == Space::Local {
                            a = Self::local_addr(self.config.interleave_local, cfg, wic, lane, a);
                        }
                        self.scratch_addrs[lane] = a;
                        vals[lane] = Self::opval(w, src, lane);
                    }
                }
                if let Some((k, a, fl)) =
                    Self::check_lanes(gmem, &self.scratch_addrs, mask, width, true)
                {
                    self.trap(widx, slot_idx, k, pc, fl, Some(a), out);
                    return;
                }
                // Functional write is deferred: logged in issue order and
                // applied by the device after every SM has ticked.
                for lane in lanes(mask) {
                    out.mem_ops.push(MemOp::Store {
                        addr: self.scratch_addrs[lane],
                        width,
                        value: vals[lane],
                    });
                }
                if !self.config.perfect_memory {
                    let mut lines = std::mem::take(&mut self.scratch_lines);
                    coalesce_lines(&self.scratch_addrs, mask, width.bytes(), &mut lines);
                    let mut hits = 0u64;
                    let mut offchip = 0u64;
                    for &line in &lines {
                        let outcome = self.l1.access(line * LINE_BYTES, true);
                        if outcome == CacheOutcome::Hit {
                            hits += 1;
                        }
                        // Thread-private local stores are absorbed by the L1
                        // when resident (write-back behaviour on real GPUs);
                        // global stores write through.
                        if space == Space::Local {
                            match outcome {
                                CacheOutcome::Hit => continue,
                                _ => self.l1.fill(line * LINE_BYTES, false),
                            }
                        }
                        let id = self.next_req_id;
                        self.next_req_id += 1;
                        out.mem_requests.push(MemRequest {
                            id,
                            addr: line * LINE_BYTES,
                            kind: ReqKind::Store,
                            tex: false,
                        });
                        self.stats.offchip_txns += 1;
                        offchip += 1;
                    }
                    let serialize = lines.len().saturating_sub(1) as u64;
                    if let Some(t) = self.pc_stats.as_deref_mut() {
                        let kid = self.slots[slot_idx].cfg.kernel_id;
                        t.record_l1(kid, pc, lines.len() as u64, hits);
                        t.record_txns(kid, pc, lines.len() as u64, serialize);
                        t.record_offchip(kid, pc, offchip);
                    }
                    self.scratch_lines = lines;
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.next_issue_at = w.next_issue_at.max(now + 1 + serialize);
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_atomic(
        &mut self,
        widx: usize,
        slot_idx: usize,
        pc: usize,
        op: AtomOp,
        space: Space,
        dst: Reg,
        addr: Operand,
        src: Operand,
        cas_cmp: Operand,
        now: u64,
        gmem: &dyn GlobalMem,
        out: &mut TickOutput,
    ) {
        let lat = self.config.lat;
        let mask;
        let mut addrs = [0u64; WARP_SIZE];
        let mut srcs = [0u64; WARP_SIZE];
        let mut cmps = [0u64; WARP_SIZE];
        {
            let w = self.warps[widx]
                .as_mut()
                .expect("scheduled warp is resident");
            mask = w.reconverge().expect("divergence stack entry").mask;
            for lane in lanes(mask) {
                addrs[lane] = Self::opval(w, addr, lane);
                srcs[lane] = Self::opval(w, src, lane);
                cmps[lane] = Self::opval(w, cas_cmp, lane);
            }
        }
        match space {
            Space::Shared => {
                if let Some((a, fl)) = Self::check_shared_lanes(
                    &addrs,
                    mask,
                    Width::B64,
                    self.slots[slot_idx].smem.len(),
                ) {
                    self.trap(
                        widx,
                        slot_idx,
                        FaultKind::SharedMemOverflow,
                        pc,
                        fl,
                        Some(a),
                        out,
                    );
                    return;
                }
                let slot = &mut self.slots[slot_idx];
                let mut olds = [0u64; WARP_SIZE];
                for lane in lanes(mask) {
                    let old = Self::bytes_read(&slot.smem, addrs[lane], Width::B64);
                    let (new, o) = op.apply(old, srcs[lane], cmps[lane]);
                    Self::bytes_write(&mut slot.smem, addrs[lane], Width::B64, new);
                    olds[lane] = o;
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                for lane in lanes(mask) {
                    w.write(dst, lane, olds[lane]);
                }
                w.reg_ready[dst.0 as usize] = now + lat.smem + nlanes_extra(mask);
                w.advance_pc();
            }
            _ => {
                // Global atomics execute at the memory partition; lanes are
                // applied in lane order (deterministic serialization).
                if let Some((k, a, fl)) = Self::check_lanes(gmem, &addrs, mask, Width::B64, true) {
                    self.trap(widx, slot_idx, k, pc, fl, Some(a), out);
                    return;
                }
                // Deferred: applied at end-of-cycle commit in (SM index,
                // issue order); the old value is written back to the warp's
                // destination register there. Reads of `dst` are gated by
                // reg_ready/reg_pending below, which never allow a read
                // before now + 1, so the commit-time write-back is
                // indistinguishable from an issue-time one.
                for lane in lanes(mask) {
                    out.mem_ops.push(MemOp::Atomic {
                        op,
                        addr: addrs[lane],
                        src: srcs[lane],
                        cas: cmps[lane],
                        warp: widx,
                        dst,
                        lane,
                    });
                }
                if self.config.perfect_memory {
                    let w = self.warps[widx]
                        .as_mut()
                        .expect("scheduled warp is resident");
                    w.reg_ready[dst.0 as usize] = now + lat.l1_hit;
                } else {
                    // One round-trip per distinct line.
                    let mut lines = std::mem::take(&mut self.scratch_lines);
                    coalesce_lines(&addrs, mask, 8, &mut lines);
                    {
                        let w = self.warps[widx]
                            .as_mut()
                            .expect("scheduled warp is resident");
                        w.reg_pending[dst.0 as usize] += lines.len() as u16;
                    }
                    for &line in &lines {
                        let id = self.next_req_id;
                        self.next_req_id += 1;
                        self.outstanding.insert(
                            id,
                            RespRoute::Atomic {
                                warp: widx,
                                reg: dst,
                            },
                        );
                        out.mem_requests.push(MemRequest {
                            id,
                            addr: line * LINE_BYTES,
                            kind: ReqKind::Atomic,
                            tex: false,
                        });
                        self.stats.offchip_txns += 1;
                    }
                    if let Some(t) = self.pc_stats.as_deref_mut() {
                        let kid = self.slots[slot_idx].cfg.kernel_id;
                        t.record_txns(kid, pc, lines.len() as u64, 0);
                        t.record_offchip(kid, pc, lines.len() as u64);
                    }
                    self.scratch_lines = lines;
                }
                let w = self.warps[widx]
                    .as_mut()
                    .expect("scheduled warp is resident");
                w.advance_pc();
            }
        }
    }
}

/// Serialization overhead for multi-lane shared atomics.
fn nlanes_extra(mask: u32) -> u64 {
    (mask.count_ones() as u64).saturating_sub(1)
}
