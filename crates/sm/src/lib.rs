//! # ggpu-sm — the streaming-multiprocessor core model
//!
//! This crate models a single GPU core (SM) at cycle granularity:
//!
//! * [`Warp`] — SIMT reconvergence stack (immediate post-dominator
//!   reconvergence), per-lane registers, and scoreboard timing.
//! * [`SmCore`] — CTA slots with occupancy-limited placement, four warp
//!   schedulers ([`SchedPolicy`]: LRR / GTO / OLD / two-level), functional
//!   execution of the `ggpu-isa` instruction set, memory-access coalescing
//!   into 128-byte transactions, shared-memory bank-conflict serialization,
//!   an L1/constant/texture cache front end, and per-cycle stall
//!   classification ([`StallReason`]) feeding the paper's Figure 5.
//! * [`SmStats`] — instruction mix (Fig 8), memory-space mix (Fig 9), warp
//!   occupancy histogram (Fig 10), stall breakdown (Fig 5).
//!
//! The SM is driven by the whole-GPU simulator in `ggpu-sim`, which provides
//! functional global memory ([`GlobalMem`]), routes [`MemRequest`]s through
//! the interconnect to L2/DRAM, and dispatches CTAs and CDP child grids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod coalesce;
mod config;
mod core;
mod pc;
mod ports;
mod stats;
mod warp;

pub use crate::core::{CtaConfig, GlobalMem, SmCore, Trap, WarpReport, WarpWait};
pub use crate::ports::{
    CompletedCta, DeviceLaunch, MemOp, MemRequest, ReqKind, SmPorts, TickOutput,
};
pub use coalesce::{bank_conflict_degree, coalesce_lines, SMEM_BANKS};
pub use config::{LatencyConfig, SchedPolicy, SmConfig};
pub use pc::{PcCounters, PcTable};
pub use stats::{SmStats, StallBreakdown, StallReason};
pub use warp::{lane_mask, lanes, SimtEntry, WaitKind, Warp, WarpBlock, FULL_MASK, NO_RECONV};

/// Why [`run_standalone`] could not run the resident work to completion.
#[derive(Debug, Clone)]
pub struct HangDiagnostic {
    /// Cycles executed before giving up.
    pub cycles: u64,
    /// Guest faults raised (empty for a pure hang).
    pub traps: Vec<Trap>,
    /// Blocked-state of every warp still resident at the end.
    pub warps: Vec<WarpReport>,
    /// Memory requests still outstanding to the (caller-modelled) memory
    /// system.
    pub outstanding: usize,
}

impl std::fmt::Display for HangDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.traps.is_empty() {
            writeln!(f, "SM made no progress for {} cycles", self.cycles)?;
        } else {
            writeln!(f, "SM trapped after {} cycles:", self.cycles)?;
            for t in &self.traps {
                writeln!(
                    f,
                    "  {} at pc {} ({}), warp {} lanes {:#010x}{}",
                    t.kind,
                    t.pc,
                    t.instr,
                    t.warp,
                    t.lane_mask,
                    t.addr.map_or(String::new(), |a| format!(", addr {a:#x}")),
                )?;
            }
        }
        writeln!(f, "{} memory requests outstanding", self.outstanding)?;
        for w in &self.warps {
            writeln!(f, "  {w}")?;
        }
        Ok(())
    }
}

impl std::error::Error for HangDiagnostic {}

/// Drive a standalone SM (no interconnect/L2/DRAM behind it) until all
/// resident work completes, answering every off-chip read one cycle after
/// it is issued.
///
/// Returns the completion cycle and any CDP child launches the kernels
/// emitted. Intended for unit tests and micro-experiments on a single SM;
/// the full memory system lives in `ggpu-sim`.
///
/// # Errors
///
/// Returns a [`HangDiagnostic`] when a warp raises a guest fault, or when
/// the SM is still busy after `max_cycles` (e.g. a CTA waiting forever in
/// `Dsync` for a child grid nobody will run).
pub fn run_standalone(
    sm: &mut SmCore,
    mem: &mut dyn GlobalMem,
    max_cycles: u64,
) -> Result<(u64, Vec<DeviceLaunch>), HangDiagnostic> {
    let mut launches = Vec::new();
    let mut traps = Vec::new();
    let mut ports = SmPorts::new();
    for now in 0..max_cycles {
        sm.tick(now, &*mem, false, &mut ports);
        sm.commit_mem_ops(mem, &mut ports.out.mem_ops);
        // Answer every non-store request one cycle later: replies pushed
        // here are drained at the start of the next tick (cycle now + 1).
        let SmPorts { replies, out } = &mut ports;
        for req in out.mem_requests.drain(..) {
            if req.kind != ReqKind::Store {
                replies.push(req.id);
            }
        }
        launches.append(&mut out.launches);
        traps.append(&mut out.traps);
        out.completed.clear();
        if !traps.is_empty() {
            return Err(HangDiagnostic {
                cycles: now,
                traps,
                warps: sm.warp_report(0),
                outstanding: sm.outstanding_requests(),
            });
        }
        if sm.is_idle() {
            return Ok((now, launches));
        }
    }
    Err(HangDiagnostic {
        cycles: max_cycles,
        traps,
        warps: sm.warp_report(0),
        outstanding: sm.outstanding_requests(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_isa::{
        AtomOp, CmpOp, KernelBuilder, LaunchDims, Operand, Program, ScalarType, Space, SpecialReg,
        Width,
    };
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Simple functional memory for tests.
    #[derive(Default)]
    struct TestMem {
        data: HashMap<u64, u8>,
    }

    impl GlobalMem for TestMem {
        fn read(&self, addr: u64, width: Width) -> u64 {
            let mut v = 0u64;
            for i in 0..width.bytes() {
                v |= (*self.data.get(&(addr + i)).unwrap_or(&0) as u64) << (8 * i);
            }
            v
        }
        fn write(&mut self, addr: u64, width: Width, value: u64) {
            for i in 0..width.bytes() {
                self.data.insert(addr + i, (value >> (8 * i)) as u8);
            }
        }
        fn atom(&mut self, op: AtomOp, addr: u64, src: u64, cas: u64) -> u64 {
            let old = self.read(addr, Width::B64);
            let (new, o) = op.apply(old, src, cas);
            self.write(addr, Width::B64, new);
            o
        }
    }

    fn run_to_completion(
        sm: &mut SmCore,
        mem: &mut TestMem,
        max_cycles: u64,
    ) -> (u64, Vec<DeviceLaunch>) {
        match run_standalone(sm, mem, max_cycles) {
            Ok(r) => r,
            Err(d) => panic!("kernel did not finish within {max_cycles} cycles:\n{d}"),
        }
    }

    fn cta_cfg(program: &Program, dims: LaunchDims, params: Vec<u64>) -> CtaConfig {
        let _ = program;
        CtaConfig {
            kernel_id: ggpu_isa::KernelId(0),
            grid_handle: 1,
            cta_linear: 0,
            dims,
            params: Arc::new(params),
            const_data: Arc::new(Vec::new()),
            local_base: 1 << 30,
            local_stride: 0,
        }
    }

    /// out[tid] = tid * 3 kernel used by several tests.
    fn simple_program() -> Program {
        let mut b = KernelBuilder::new("triple");
        let tid = b.global_tid();
        let v = b.reg();
        b.imul(v, tid, Operand::imm(3));
        let a = b.reg();
        b.imul(a, tid, Operand::imm(8));
        let base = b.reg();
        b.ld_param(base, 0);
        b.iadd(a, a, Operand::reg(base));
        b.st(Space::Global, Width::B64, Operand::reg(v), a, 0);
        b.exit();
        let k = b.finish();
        k.validate().unwrap();
        let mut p = Program::new();
        p.add(k);
        p
    }

    #[test]
    fn runs_simple_kernel_and_writes_results() {
        let program = Arc::new(simple_program());
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        let dims = LaunchDims::linear(1, 64);
        assert!(sm.try_launch_cta(CtaConfig {
            cta_linear: 0,
            ..cta_cfg(&program, dims, vec![0x1000])
        }));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 10_000);
        for tid in 0..64u64 {
            assert_eq!(mem.read(0x1000 + tid * 8, Width::B64), tid * 3, "tid {tid}");
        }
        assert_eq!(sm.stats().ctas_completed, 1);
        assert!(sm.stats().issued > 0);
    }

    #[test]
    fn occupancy_histogram_full_warps() {
        let program = Arc::new(simple_program());
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 64), vec![0x1000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 10_000);
        assert!(sm.stats().occupancy_fraction(29, 32) > 0.99);
    }

    #[test]
    fn partial_warp_occupancy() {
        let program = Arc::new(simple_program());
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        // 40 threads: one full warp + one 8-lane warp.
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 40), vec![0x1000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 10_000);
        assert!(sm.stats().occupancy_fraction(5, 8) > 0.0);
    }

    #[test]
    fn divergent_kernel_reconverges_and_counts_divergence() {
        // if (tid & 1) v = 10 else v = 20; out[tid] = v
        let mut b = KernelBuilder::new("diverge");
        let tid = b.global_tid();
        let bit = b.reg();
        b.iand(bit, tid, Operand::imm(1));
        let p = b.cmp_s(CmpOp::Ne, Operand::reg(bit), Operand::imm(0));
        let v = b.reg();
        b.if_then_else(
            p,
            |b| b.mov(v, Operand::imm(10)),
            |b| b.mov(v, Operand::imm(20)),
        );
        let a = b.reg();
        b.imul(a, tid, Operand::imm(8));
        let base = b.reg();
        b.ld_param(base, 0);
        b.iadd(a, a, Operand::reg(base));
        b.st(Space::Global, Width::B64, Operand::reg(v), a, 0);
        b.exit();
        let mut p2 = Program::new();
        p2.add(b.finish());
        let program = Arc::new(p2);

        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![0x2000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 10_000);
        for tid in 0..32u64 {
            let want = if tid & 1 == 1 { 10 } else { 20 };
            assert_eq!(mem.read(0x2000 + tid * 8, Width::B64), want, "tid {tid}");
        }
        assert!(sm.stats().occupancy[15] > 0, "16-lane issues expected");
    }

    #[test]
    fn loop_kernel_sums_range() {
        // out[0] = sum(0..100) computed by thread 0.
        let mut b = KernelBuilder::new("sumloop");
        let tid = b.global_tid();
        let iszero = b.cmp_s(CmpOp::Eq, Operand::reg(tid), Operand::imm(0));
        b.if_then(iszero, |b| {
            let acc = b.reg();
            b.mov(acc, Operand::imm(0));
            b.for_range(Operand::imm(0), Operand::imm(100), 1, |b, i| {
                b.iadd(acc, acc, Operand::reg(i));
            });
            let base = b.reg();
            b.ld_param(base, 0);
            b.st(Space::Global, Width::B64, Operand::reg(acc), base, 0);
        });
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);

        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![0x3000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 100_000);
        assert_eq!(mem.read(0x3000, Width::B64), 4950);
    }

    #[test]
    fn shared_memory_roundtrip_with_barrier() {
        // smem[tid] = tid; barrier; out[tid] = smem[31-tid]
        let mut b = KernelBuilder::new("smem");
        let smem_base = b.alloc_smem(32 * 8);
        let tid = b.global_tid();
        let sa = b.reg();
        b.imul(sa, tid, Operand::imm(8));
        b.iadd(sa, sa, Operand::imm(smem_base as i64));
        b.st(Space::Shared, Width::B64, Operand::reg(tid), sa, 0);
        b.bar();
        let rtid = b.reg();
        b.isub(rtid, Operand::imm(31), Operand::reg(tid));
        let ra = b.reg();
        b.imul(ra, rtid, Operand::imm(8));
        b.iadd(ra, ra, Operand::imm(smem_base as i64));
        let v = b.reg();
        b.ld(Space::Shared, Width::B64, v, ra, 0);
        let base = b.reg();
        b.ld_param(base, 0);
        let oa = b.reg();
        b.imul(oa, tid, Operand::imm(8));
        b.iadd(oa, oa, Operand::reg(base));
        b.st(Space::Global, Width::B64, Operand::reg(v), oa, 0);
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);

        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![0x4000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 10_000);
        for tid in 0..32u64 {
            assert_eq!(mem.read(0x4000 + tid * 8, Width::B64), 31 - tid);
        }
        assert!(sm.stats().space_count(Space::Shared) > 0);
    }

    #[test]
    fn barrier_synchronizes_across_warps() {
        // All threads write smem[tid]; barrier; read across warp boundary.
        let mut b = KernelBuilder::new("xwarp");
        let off = b.alloc_smem(64 * 8);
        let tid = b.global_tid();
        let sa = b.reg();
        b.imul(sa, tid, Operand::imm(8));
        b.iadd(sa, sa, Operand::imm(off as i64));
        let v0 = b.reg();
        b.iadd(v0, tid, Operand::imm(100));
        b.st(Space::Shared, Width::B64, Operand::reg(v0), sa, 0);
        b.bar();
        let other = b.reg();
        b.iadd(other, tid, Operand::imm(32));
        b.alu(
            ggpu_isa::AluOp::IRem,
            other,
            Operand::reg(other),
            Operand::imm(64),
        );
        let oa = b.reg();
        b.imul(oa, other, Operand::imm(8));
        b.iadd(oa, oa, Operand::imm(off as i64));
        let v = b.reg();
        b.ld(Space::Shared, Width::B64, v, oa, 0);
        let base = b.reg();
        b.ld_param(base, 0);
        let ga = b.reg();
        b.imul(ga, tid, Operand::imm(8));
        b.iadd(ga, ga, Operand::reg(base));
        b.st(Space::Global, Width::B64, Operand::reg(v), ga, 0);
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);

        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 64), vec![0x8000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 20_000);
        for tid in 0..64u64 {
            let want = (tid + 32) % 64 + 100;
            assert_eq!(mem.read(0x8000 + tid * 8, Width::B64), want, "tid {tid}");
        }
    }

    #[test]
    fn global_atomics_accumulate() {
        let mut b = KernelBuilder::new("atomic");
        let base = b.reg();
        b.ld_param(base, 0);
        let old = b.reg();
        b.atom(
            AtomOp::Add,
            Space::Global,
            old,
            base,
            Operand::imm(1),
            Operand::imm(0),
        );
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);

        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 128), vec![0x9000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 20_000);
        assert_eq!(mem.read(0x9000, Width::B64), 128);
    }

    #[test]
    fn cdp_launch_emitted_and_dsync_blocks() {
        // Thread 0 launches a child grid and syncs on it.
        let mut b = KernelBuilder::new("parent");
        let tid = b.global_tid();
        let z = b.cmp_s(CmpOp::Eq, Operand::reg(tid), Operand::imm(0));
        b.if_then(z, |b| {
            b.launch(1, Operand::imm(2), Operand::imm(32), Operand::imm(0x100), 1);
            b.dsync();
        });
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let mut cb = KernelBuilder::new("child");
        cb.exit();
        p.add(cb.finish());
        let program = Arc::new(p);

        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![]));
        let mut mem = TestMem::default();
        mem.write(0x100, Width::B64, 0xAB);

        let mut launches: Vec<DeviceLaunch> = Vec::new();
        let mut released = false;
        let mut ports = SmPorts::new();
        for now in 0..20_000 {
            sm.tick(now, &mem, false, &mut ports);
            sm.commit_mem_ops(&mut mem, &mut ports.out.mem_ops);
            for req in ports.out.mem_requests.drain(..) {
                if req.kind != ReqKind::Store {
                    sm.mem_response(req.id, now + 1);
                }
            }
            launches.append(&mut ports.out.launches);
            if !launches.is_empty() && now > 500 && !released {
                sm.child_grid_done(launches[0].parent_slot, None);
                released = true;
            }
            if sm.is_idle() {
                break;
            }
        }
        assert!(released, "parent should have waited on dsync");
        assert!(sm.is_idle(), "parent must finish after child completes");
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].kernel, 1);
        assert_eq!(launches[0].grid_x, 2);
        assert_eq!(launches[0].block_x, 32);
        assert_eq!(launches[0].params, vec![0xAB]);
        assert_eq!(sm.stats().device_launches, 1);
    }

    #[test]
    fn occupancy_limits_respected() {
        let mut b = KernelBuilder::new("fat");
        b.set_regs_per_thread(64);
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        // 64 regs × 128 threads = 8192 regs per CTA; 65536/8192 = 8 CTAs.
        let dims = LaunchDims::linear(100, 128);
        let mut placed = 0;
        while sm.try_launch_cta(CtaConfig {
            cta_linear: placed,
            ..cta_cfg(&program, dims, vec![])
        }) {
            placed += 1;
        }
        assert_eq!(placed, 8);
    }

    #[test]
    fn stall_classification_memory_dominates_under_misses() {
        // Strided global loads guarantee misses and memory stalls.
        let mut b = KernelBuilder::new("misser");
        let tid = b.global_tid();
        let acc = b.reg();
        b.mov(acc, Operand::imm(0));
        b.for_range(Operand::imm(0), Operand::imm(32), 1, |b, i| {
            let a = b.reg();
            b.imul(a, i, Operand::imm(32));
            b.iadd(a, a, Operand::reg(tid));
            b.imul(a, a, Operand::imm(4096));
            let v = b.reg();
            b.ld(Space::Global, Width::B64, v, a, 0);
            b.iadd(acc, acc, Operand::reg(v));
        });
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);

        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![]));
        let mut mem = TestMem::default();

        let mut pending: Vec<(u64, u64)> = Vec::new();
        let mut finished = false;
        let mut ports = SmPorts::new();
        for now in 0..1_000_000 {
            sm.tick(now, &mem, false, &mut ports);
            sm.commit_mem_ops(&mut mem, &mut ports.out.mem_ops);
            for req in ports.out.mem_requests.drain(..) {
                if req.kind != ReqKind::Store {
                    pending.push((req.id, now + 200));
                }
            }
            pending.retain(|&(id, t)| {
                if t <= now {
                    sm.mem_response(id, now);
                    false
                } else {
                    true
                }
            });
            if sm.is_idle() {
                finished = true;
                break;
            }
        }
        assert!(finished, "kernel hung");
        let stalls = &sm.stats().stalls;
        assert!(
            stalls.fraction(StallReason::MemLatency) > 0.5,
            "memory stalls should dominate: {stalls:?}"
        );
        assert!(sm.l1_stats().miss_rate() > 0.9);
    }

    #[test]
    fn scheduler_policies_all_complete() {
        for policy in [
            SchedPolicy::Lrr,
            SchedPolicy::Gto,
            SchedPolicy::Old,
            SchedPolicy::TwoLevel,
        ] {
            let program = Arc::new(simple_program());
            let cfg = SmConfig {
                policy,
                ..SmConfig::default()
            };
            let mut sm = SmCore::new(cfg, Arc::clone(&program));
            sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 128), vec![0x1000]));
            let mut mem = TestMem::default();
            run_to_completion(&mut sm, &mut mem, 50_000);
            for tid in 0..128u64 {
                assert_eq!(
                    mem.read(0x1000 + tid * 8, Width::B64),
                    tid * 3,
                    "{policy}: tid {tid}"
                );
            }
        }
    }

    #[test]
    fn perfect_memory_is_faster() {
        let build = |perfect: bool| {
            let mut b = KernelBuilder::new("reader");
            let tid = b.global_tid();
            let acc = b.reg();
            b.mov(acc, Operand::imm(0));
            b.for_range(Operand::imm(0), Operand::imm(16), 1, |b, i| {
                let a = b.reg();
                b.imul(a, i, Operand::imm(32));
                b.iadd(a, a, Operand::reg(tid));
                b.imul(a, a, Operand::imm(4096));
                let v = b.reg();
                b.ld(Space::Global, Width::B64, v, a, 0);
                b.iadd(acc, acc, Operand::reg(v));
            });
            b.exit();
            let mut p = Program::new();
            p.add(b.finish());
            let program = Arc::new(p);
            let cfg = SmConfig {
                perfect_memory: perfect,
                ..SmConfig::default()
            };
            let mut sm = SmCore::new(cfg, Arc::clone(&program));
            sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![]));
            let mut mem = TestMem::default();
            let mut pending: Vec<(u64, u64)> = Vec::new();
            let mut ports = SmPorts::new();
            for now in 0..1_000_000 {
                sm.tick(now, &mem, false, &mut ports);
                sm.commit_mem_ops(&mut mem, &mut ports.out.mem_ops);
                for req in ports.out.mem_requests.drain(..) {
                    if req.kind != ReqKind::Store {
                        pending.push((req.id, now + 300));
                    }
                }
                pending.retain(|&(id, t)| {
                    if t <= now {
                        sm.mem_response(id, now);
                        false
                    } else {
                        true
                    }
                });
                if sm.is_idle() {
                    return now;
                }
            }
            panic!("hang");
        };
        let slow = build(false);
        let fast = build(true);
        assert!(
            fast * 2 < slow,
            "perfect memory ({fast}) should be much faster than 300-cycle memory ({slow})"
        );
    }

    #[test]
    fn sreg_special_registers() {
        let mut b = KernelBuilder::new("sregs");
        let lane = b.reg();
        b.sreg(lane, SpecialReg::LaneId);
        let warp = b.reg();
        b.sreg(warp, SpecialReg::WarpId);
        let ntid = b.reg();
        b.sreg(ntid, SpecialReg::NTidX);
        let tid = b.global_tid();
        let v = b.reg();
        b.imul(v, warp, Operand::imm(1000));
        b.iadd(v, v, Operand::reg(lane));
        let t = b.reg();
        b.imul(t, ntid, Operand::imm(1_000_000));
        b.iadd(v, v, Operand::reg(t));
        let base = b.reg();
        b.ld_param(base, 0);
        let a = b.reg();
        b.imul(a, tid, Operand::imm(8));
        b.iadd(a, a, Operand::reg(base));
        b.st(Space::Global, Width::B64, Operand::reg(v), a, 0);
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 64), vec![0x5000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 10_000);
        for tid in 0..64u64 {
            let want = (tid % 32) + (tid / 32) * 1000 + 64 * 1_000_000;
            assert_eq!(mem.read(0x5000 + tid * 8, Width::B64), want, "tid {tid}");
        }
    }

    #[test]
    fn setp_float_comparison_in_kernel() {
        let mut b = KernelBuilder::new("fcmp");
        let p = b.reg();
        b.setp(
            p,
            CmpOp::Gt,
            ScalarType::F64,
            Operand::f64imm(2.5),
            Operand::f64imm(1.5),
        );
        let v = b.reg();
        b.sel(v, p, Operand::imm(7), Operand::imm(9));
        let base = b.reg();
        b.ld_param(base, 0);
        b.st(Space::Global, Width::B64, Operand::reg(v), base, 0);
        b.exit();
        let mut prog = Program::new();
        prog.add(b.finish());
        let program = Arc::new(prog);
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 1), vec![0x6000]));
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 10_000);
        assert_eq!(mem.read(0x6000, Width::B64), 7);
    }

    /// TestMem wrapper that rejects out-of-bounds / misaligned accesses the
    /// way the device memory in `ggpu-sim` does.
    #[derive(Default)]
    struct BoundedMem {
        inner: TestMem,
        limit: u64,
    }

    impl GlobalMem for BoundedMem {
        fn read(&self, addr: u64, width: Width) -> u64 {
            self.inner.read(addr, width)
        }
        fn write(&mut self, addr: u64, width: Width, value: u64) {
            self.inner.write(addr, width, value);
        }
        fn atom(&mut self, op: AtomOp, addr: u64, src: u64, cas: u64) -> u64 {
            self.inner.atom(op, addr, src, cas)
        }
        fn check(&self, addr: u64, width: Width, _store: bool) -> Option<ggpu_isa::FaultKind> {
            if !addr.is_multiple_of(width.bytes()) {
                Some(ggpu_isa::FaultKind::MisalignedAccess)
            } else if addr + width.bytes() > self.limit {
                Some(ggpu_isa::FaultKind::IllegalAddress)
            } else {
                None
            }
        }
    }

    #[test]
    fn oob_global_store_traps_with_context() {
        let program = Arc::new(simple_program());
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 64), vec![0x1000]));
        // Only the first 16 threads' stores fit below the limit.
        let mut mem = BoundedMem {
            limit: 0x1000 + 16 * 8,
            ..BoundedMem::default()
        };
        let err =
            run_standalone(&mut sm, &mut mem, 10_000).expect_err("out-of-bounds store must trap");
        // Both warps of the CTA hit the bound in the same cycle (they sit
        // on different schedulers); the first report is warp 0's.
        assert!(!err.traps.is_empty());
        let t = &err.traps[0];
        assert_eq!(t.kind, ggpu_isa::FaultKind::IllegalAddress);
        assert!(t.instr.contains("st.global"), "instr: {}", t.instr);
        assert_eq!(t.addr, Some(0x1000 + 16 * 8));
        assert_ne!(t.lane_mask, 0);
        // Faulting lanes are exactly threads 16.. of the first warp.
        assert_eq!(t.lane_mask, 0xFFFF_0000);
        // No partial write happened on the faulting warp.
        assert_eq!(mem.read(0x1000 + 31 * 8, Width::B64), 0);
        // The report names the trapped warp.
        assert!(err
            .warps
            .iter()
            .any(|w| matches!(w.wait, WarpWait::Trapped)));
    }

    #[test]
    fn misaligned_access_traps() {
        let mut b = KernelBuilder::new("misaligned");
        let base = b.reg();
        b.ld_param(base, 0);
        let v = b.reg();
        b.ld(Space::Global, Width::B64, v, base, 3);
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 1), vec![0x1000]));
        let mut mem = BoundedMem {
            limit: 1 << 20,
            ..BoundedMem::default()
        };
        let err = run_standalone(&mut sm, &mut mem, 10_000).expect_err("must trap");
        assert_eq!(err.traps[0].kind, ggpu_isa::FaultKind::MisalignedAccess);
        assert_eq!(err.traps[0].addr, Some(0x1003));
    }

    #[test]
    fn pc_past_stream_end_traps_invalid_pc() {
        // Hand-built instruction stream with no terminating Exit on the
        // executed path (Kernel::validate would reject it; the SM must trap
        // rather than panic).
        let k = ggpu_isa::Kernel {
            name: "runaway".into(),
            instrs: vec![ggpu_isa::Instr::Mov {
                dst: ggpu_isa::Reg(0),
                src: Operand::imm(7),
            }],
            regs_per_thread: 1,
            smem_per_cta: 0,
            cmem_bytes: 0,
            local_bytes_per_thread: 0,
        };
        let mut p = Program::new();
        p.add(k);
        let program = Arc::new(p);
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![]));
        let mut mem = TestMem::default();
        let err = run_standalone(&mut sm, &mut mem, 1_000).expect_err("must trap");
        assert_eq!(err.traps[0].kind, ggpu_isa::FaultKind::InvalidPc);
        assert_eq!(err.traps[0].pc, 1);
    }

    #[test]
    fn shared_overflow_traps() {
        let mut b = KernelBuilder::new("smem_oob");
        let off = b.alloc_smem(16);
        let tid = b.global_tid();
        let sa = b.reg();
        b.imul(sa, tid, Operand::imm(8));
        b.iadd(sa, sa, Operand::imm(off as i64));
        b.st(Space::Shared, Width::B64, Operand::reg(tid), sa, 0);
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![]));
        let mut mem = TestMem::default();
        let err = run_standalone(&mut sm, &mut mem, 1_000).expect_err("must trap");
        assert_eq!(err.traps[0].kind, ggpu_isa::FaultKind::SharedMemOverflow);
        // Lanes 0 and 1 fit in the 16-byte allocation; the rest fault.
        assert_eq!(err.traps[0].lane_mask, !0b11);
    }

    #[test]
    fn divergent_barrier_traps_when_enabled() {
        let build = |trap: bool| {
            let mut b = KernelBuilder::new("divbar");
            let tid = b.global_tid();
            let p = b.cmp_s(CmpOp::Lt, Operand::reg(tid), Operand::imm(16));
            b.if_then(p, |b| {
                b.bar();
            });
            b.bar();
            b.exit();
            let mut prog = Program::new();
            prog.add(b.finish());
            let program = Arc::new(prog);
            let cfg = SmConfig {
                trap_divergent_barrier: trap,
                ..SmConfig::default()
            };
            let mut sm = SmCore::new(cfg, Arc::clone(&program));
            sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 32), vec![]));
            let mut mem = TestMem::default();
            run_standalone(&mut sm, &mut mem, 10_000)
        };
        // Single-warp CTA: the lenient per-warp barrier account lets the
        // divergent barrier pass when trapping is off...
        assert!(build(false).is_ok());
        // ...and the strict mode reports the bug deterministically.
        let err = build(true).expect_err("divergent barrier must trap");
        assert_eq!(err.traps[0].kind, ggpu_isa::FaultKind::BarrierDivergence);
        assert!(err.traps[0].instr.contains("bar"));
    }

    #[test]
    fn abort_workload_returns_sm_to_clean_idle() {
        let program = Arc::new(simple_program());
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 64), vec![0x1000]));
        let mut mem = TestMem::default();
        // Run a few cycles so requests are in flight, then abort.
        let mut ports = SmPorts::new();
        for now in 0..10 {
            sm.tick(now, &mem, false, &mut ports);
            sm.commit_mem_ops(&mut mem, &mut ports.out.mem_ops);
        }
        assert!(!sm.is_idle());
        sm.abort_workload();
        assert!(sm.is_idle());
        assert_eq!(sm.outstanding_requests(), 0);
        assert_eq!(sm.resident_ctas(), 0);
        // The SM accepts and completes fresh work afterwards.
        assert!(sm.try_launch_cta(cta_cfg(&program, LaunchDims::linear(1, 64), vec![0x1000])));
        run_to_completion(&mut sm, &mut mem, 10_000);
        for tid in 0..64u64 {
            assert_eq!(mem.read(0x1000 + tid * 8, Width::B64), tid * 3, "tid {tid}");
        }
    }

    #[test]
    fn local_memory_is_thread_private() {
        let mut b = KernelBuilder::new("local");
        b.set_local_bytes(8);
        let tid = b.global_tid();
        let zero = b.reg();
        b.mov(zero, Operand::imm(0));
        b.st(Space::Local, Width::B64, Operand::reg(tid), zero, 0);
        let v = b.reg();
        b.ld(Space::Local, Width::B64, v, zero, 0);
        let base = b.reg();
        b.ld_param(base, 0);
        let a = b.reg();
        b.imul(a, tid, Operand::imm(8));
        b.iadd(a, a, Operand::reg(base));
        b.st(Space::Global, Width::B64, Operand::reg(v), a, 0);
        b.exit();
        let mut p = Program::new();
        p.add(b.finish());
        let program = Arc::new(p);
        let mut sm = SmCore::new(SmConfig::default(), Arc::clone(&program));
        let mut cfg = cta_cfg(&program, LaunchDims::linear(1, 64), vec![0x7000]);
        cfg.local_stride = 8;
        sm.try_launch_cta(cfg);
        let mut mem = TestMem::default();
        run_to_completion(&mut sm, &mut mem, 20_000);
        for tid in 0..64u64 {
            assert_eq!(mem.read(0x7000 + tid * 8, Width::B64), tid, "tid {tid}");
        }
        assert!(sm.stats().space_count(Space::Local) > 0);
    }
}
