//! Per-PC attribution counters: the "code axis" of the profiler.
//!
//! When [`crate::SmConfig::attribution`] is set, every SM keeps a
//! [`PcTable`] — one [`PcCounters`] row per instruction of every kernel in
//! the program — and charges issues, stall cycles, L1 traffic, coalesced
//! transactions, replay cycles and off-chip requests to the PC that caused
//! them. Tables are per-SM (each shard accumulates locally with no sharing)
//! and merge with field-wise sums, so the device-level aggregate is
//! bit-identical for any `sim_threads` as long as tables are merged in SM
//! index order.
//!
//! The counters are designed to *telescope*: summed over all PCs (plus the
//! [`PcTable::unattributed`] stall bucket) they reproduce the corresponding
//! [`crate::SmStats`] and L1 [`ggpu_mem::CacheStats`] aggregates exactly.

use ggpu_isa::{KernelId, Program};

use crate::stats::{StallBreakdown, StallReason};

/// Attribution counters for one static instruction (one PC of one kernel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcCounters {
    /// Warp-instructions issued from this PC.
    pub issues: u64,
    /// Thread-instructions executed (issues × active lanes).
    pub lanes: u64,
    /// Scheduler stall cycles charged to this PC (the representative
    /// blocked warp was parked here).
    pub stalls: StallBreakdown,
    /// L1 data-cache accesses (one per coalesced line probed).
    pub l1_accesses: u64,
    /// L1 data-cache hits.
    pub l1_hits: u64,
    /// Coalesced 128-byte memory transactions generated — the
    /// memory-divergence degree of the access pattern at this PC.
    pub mem_txns: u64,
    /// Extra issue-slot cycles spent replaying uncoalesced accesses
    /// (transactions beyond the first per access).
    pub replays: u64,
    /// Requests sent off-chip (L1 misses, write-throughs, atomics).
    pub offchip_txns: u64,
}

impl PcCounters {
    /// True when every counter is zero (row can be elided from listings).
    pub fn is_zero(&self) -> bool {
        *self == PcCounters::default()
    }

    /// L1 miss rate at this PC, in `[0, 1]`; zero when the PC generated no
    /// L1 traffic.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            1.0 - self.l1_hits as f64 / self.l1_accesses as f64
        }
    }

    /// Mean coalesced transactions per issue — 1.0 is fully coalesced,
    /// 32.0 fully divergent; zero when nothing issued.
    pub fn avg_divergence(&self) -> f64 {
        if self.issues == 0 {
            0.0
        } else {
            self.mem_txns as f64 / self.issues as f64
        }
    }

    /// Accumulate another row into this one (field-wise sums).
    pub fn merge(&mut self, other: &PcCounters) {
        self.issues += other.issues;
        self.lanes += other.lanes;
        self.stalls.merge(&other.stalls);
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.mem_txns += other.mem_txns;
        self.replays += other.replays;
        self.offchip_txns += other.offchip_txns;
    }
}

/// Per-PC counter table covering every kernel of a program, plus an
/// `unattributed` bucket for stall cycles with no representative PC.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PcTable {
    /// `kernels[kid][pc]` — one row per static instruction.
    kernels: Vec<Vec<PcCounters>>,
    /// Stall cycles that cannot be pinned on an instruction: functional-done
    /// and idle slots, plus (defensively) any stall whose representative
    /// warp has no resolvable PC.
    unattributed: StallBreakdown,
}

impl PcTable {
    /// Build an all-zero table sized for `program`.
    pub fn new(program: &Program) -> Self {
        PcTable {
            kernels: program
                .iter()
                .map(|(_, k)| vec![PcCounters::default(); k.instrs.len()])
                .collect(),
            unattributed: StallBreakdown::default(),
        }
    }

    #[inline]
    fn row(&mut self, kid: KernelId, pc: usize) -> Option<&mut PcCounters> {
        self.kernels.get_mut(kid.0 as usize)?.get_mut(pc)
    }

    /// Charge one issued warp-instruction with `lanes` active lanes.
    #[inline]
    pub fn record_issue(&mut self, kid: KernelId, pc: usize, lanes: u32) {
        if let Some(r) = self.row(kid, pc) {
            r.issues += 1;
            r.lanes += lanes as u64;
        }
    }

    /// Charge one scheduler stall cycle to the representative warp's PC,
    /// falling back to the unattributed bucket when the PC is out of range.
    #[inline]
    pub fn record_stall(&mut self, kid: KernelId, pc: usize, reason: StallReason) {
        self.record_stall_cycles(kid, pc, reason, 1);
    }

    /// Charge `cycles` identical stall cycles to one PC in a single call —
    /// the fast-forward path credits a whole skipped span at once.
    #[inline]
    pub fn record_stall_cycles(
        &mut self,
        kid: KernelId,
        pc: usize,
        reason: StallReason,
        cycles: u64,
    ) {
        match self.row(kid, pc) {
            Some(r) => r.stalls.add(reason, cycles),
            None => self.unattributed.add(reason, cycles),
        }
    }

    /// Charge stall cycles with no representative instruction (idle and
    /// functional-done slots).
    #[inline]
    pub fn record_unattributed(&mut self, reason: StallReason, cycles: u64) {
        self.unattributed.add(reason, cycles);
    }

    /// Charge L1 data-cache traffic: `accesses` probes of which `hits` hit.
    #[inline]
    pub fn record_l1(&mut self, kid: KernelId, pc: usize, accesses: u64, hits: u64) {
        if let Some(r) = self.row(kid, pc) {
            r.l1_accesses += accesses;
            r.l1_hits += hits;
        }
    }

    /// Charge `txns` coalesced transactions and the implied replay cycles
    /// (`txns - 1` extra issue-slot cycles when `txns > 1`).
    #[inline]
    pub fn record_txns(&mut self, kid: KernelId, pc: usize, txns: u64, replays: u64) {
        if let Some(r) = self.row(kid, pc) {
            r.mem_txns += txns;
            r.replays += replays;
        }
    }

    /// Charge `n` off-chip requests.
    #[inline]
    pub fn record_offchip(&mut self, kid: KernelId, pc: usize, n: u64) {
        if let Some(r) = self.row(kid, pc) {
            r.offchip_txns += n;
        }
    }

    /// Rows for one kernel (empty for unknown ids).
    pub fn kernel(&self, kid: KernelId) -> &[PcCounters] {
        self.kernels
            .get(kid.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of kernels covered.
    pub fn n_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Stall cycles with no representative PC.
    pub fn unattributed(&self) -> &StallBreakdown {
        &self.unattributed
    }

    /// Sum of a per-row counter over every PC of every kernel.
    pub fn total<F: Fn(&PcCounters) -> u64>(&self, f: F) -> u64 {
        self.kernels.iter().flat_map(|k| k.iter()).map(f).sum()
    }

    /// Sum of all per-PC stall breakdowns plus the unattributed bucket —
    /// telescopes to the SM's aggregate stall breakdown.
    pub fn total_stalls(&self) -> StallBreakdown {
        let mut t = self.unattributed;
        for k in &self.kernels {
            for r in k {
                t.merge(&r.stalls);
            }
        }
        t
    }

    /// Accumulate another table into this one. Tables must come from the
    /// same program; extra kernels/PCs in `other` are ignored (cannot occur
    /// between tables built by [`PcTable::new`] on one program).
    pub fn merge(&mut self, other: &PcTable) {
        for (ks, ko) in self.kernels.iter_mut().zip(&other.kernels) {
            for (s, o) in ks.iter_mut().zip(ko) {
                s.merge(o);
            }
        }
        self.unattributed.merge(&other.unattributed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ggpu_isa::KernelBuilder;

    fn two_kernel_program() -> Program {
        let mut p = Program::new();
        let mut a = KernelBuilder::new("a");
        a.exit();
        p.add(a.finish());
        let mut b = KernelBuilder::new("b");
        let r = b.reg();
        b.mov(r, ggpu_isa::Operand::imm(1));
        b.exit();
        p.add(b.finish());
        p
    }

    #[test]
    fn table_sized_from_program() {
        let t = PcTable::new(&two_kernel_program());
        assert_eq!(t.n_kernels(), 2);
        assert_eq!(t.kernel(KernelId(0)).len(), 1);
        assert_eq!(t.kernel(KernelId(1)).len(), 2);
        assert!(t.kernel(KernelId(9)).is_empty());
    }

    #[test]
    fn records_land_on_rows() {
        let mut t = PcTable::new(&two_kernel_program());
        t.record_issue(KernelId(1), 0, 32);
        t.record_issue(KernelId(1), 0, 16);
        t.record_l1(KernelId(1), 0, 4, 3);
        t.record_txns(KernelId(1), 0, 4, 3);
        t.record_offchip(KernelId(1), 0, 1);
        t.record_stall(KernelId(1), 1, StallReason::DataHazard);
        let r = &t.kernel(KernelId(1))[0];
        assert_eq!(r.issues, 2);
        assert_eq!(r.lanes, 48);
        assert_eq!(r.l1_accesses, 4);
        assert_eq!(r.l1_hits, 3);
        assert!((r.l1_miss_rate() - 0.25).abs() < 1e-12);
        assert!((r.avg_divergence() - 2.0).abs() < 1e-12);
        assert_eq!(r.replays, 3);
        assert_eq!(r.offchip_txns, 1);
        assert_eq!(
            t.kernel(KernelId(1))[1].stalls.get(StallReason::DataHazard),
            1
        );
        assert!(t.kernel(KernelId(0))[0].is_zero());
    }

    #[test]
    fn out_of_range_stalls_fall_back_to_unattributed() {
        let mut t = PcTable::new(&two_kernel_program());
        t.record_stall(KernelId(0), 99, StallReason::MemLatency);
        t.record_stall(KernelId(7), 0, StallReason::Barrier);
        t.record_unattributed(StallReason::Idle, 5);
        assert_eq!(t.unattributed().get(StallReason::MemLatency), 1);
        assert_eq!(t.unattributed().get(StallReason::Barrier), 1);
        assert_eq!(t.unattributed().get(StallReason::Idle), 5);
        assert_eq!(t.total_stalls().total(), 7);
    }

    #[test]
    fn merge_is_field_wise_sum() {
        let p = two_kernel_program();
        let mut a = PcTable::new(&p);
        let mut b = PcTable::new(&p);
        a.record_issue(KernelId(1), 1, 8);
        b.record_issue(KernelId(1), 1, 24);
        b.record_stall(KernelId(1), 0, StallReason::MemLatency);
        b.record_unattributed(StallReason::Idle, 2);
        a.merge(&b);
        assert_eq!(a.kernel(KernelId(1))[1].issues, 2);
        assert_eq!(a.kernel(KernelId(1))[1].lanes, 32);
        assert_eq!(a.total(|r| r.lanes), 32);
        assert_eq!(a.total_stalls().get(StallReason::MemLatency), 1);
        assert_eq!(a.unattributed().get(StallReason::Idle), 2);
    }
}
