//! Port/queue types decoupling the SM from the rest of the device.
//!
//! An [`SmCore`](crate::SmCore) never reaches into the memory system and the
//! memory system never reaches into an SM mid-cycle: all traffic crosses an
//! explicit pair of per-SM queues bundled in [`SmPorts`].
//!
//! * **Inbound** — [`SmPorts::replies`]: request ids answered by the memory
//!   system, delivered at the start of the SM's next
//!   [`tick`](crate::SmCore::tick).
//! * **Outbound** — [`SmPorts::out`]: everything one cycle produced
//!   ([`TickOutput`]): coalesced off-chip requests, deferred functional
//!   memory writes ([`MemOp`]), CDP launches, completed CTAs, and traps.
//!
//! During a tick the SM sees global memory as a *read-only* snapshot of
//! cycle-start state ([`GlobalMem`](crate::GlobalMem) reads take `&self`);
//! stores and global atomics are logged as [`MemOp`]s and applied by the
//! device **after** every SM has ticked, in deterministic merge order — SM
//! index first, then issue order within the SM
//! ([`SmCore::commit_mem_ops`](crate::SmCore::commit_mem_ops)). This is what
//! makes the per-SM phase a pure function of SM-local state plus its ports,
//! so SMs may tick concurrently with bit-identical results.

use ggpu_isa::{AtomOp, Reg, Width};

/// Kind of off-chip memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// Read that must be answered with [`SmCore::mem_response`](crate::SmCore::mem_response).
    Load,
    /// Write-through store; fire and forget.
    Store,
    /// Atomic executed at the memory partition; must be answered.
    Atomic,
}

/// An off-chip memory request emitted by [`SmCore::tick`](crate::SmCore::tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// SM-local request id (echoed back through [`SmPorts::replies`]).
    pub id: u64,
    /// 128-byte-aligned byte address.
    pub addr: u64,
    /// Request kind.
    pub kind: ReqKind,
    /// Whether this request came through the texture path.
    pub tex: bool,
}

/// A deferred functional memory update, logged during the SM's tick and
/// committed by the device at end of cycle in (SM index, issue order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// Plain store of the low `width` bytes of `value` at `addr`.
    Store {
        /// Byte address.
        addr: u64,
        /// Access width.
        width: Width,
        /// Value to store (low `width` bytes).
        value: u64,
    },
    /// Global atomic: applied at commit; the old value is written back to
    /// the issuing warp's destination register lane.
    Atomic {
        /// Atomic operation.
        op: AtomOp,
        /// Byte address (8-byte granule).
        addr: u64,
        /// Source operand.
        src: u64,
        /// CAS compare value (ignored by non-CAS ops).
        cas: u64,
        /// SM-local warp index to write the old value back to.
        warp: usize,
        /// Destination register for the old value.
        dst: Reg,
        /// Lane within the warp.
        lane: usize,
    },
}

/// A device-side child-kernel launch emitted by a CDP kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLaunch {
    /// Child kernel id within the shared program.
    pub kernel: u32,
    /// Child grid size (CTAs).
    pub grid_x: u32,
    /// Child CTA size (threads).
    pub block_x: u32,
    /// Parameters copied from the parent-provided global-memory block.
    pub params: Vec<u64>,
    /// CTA slot of the parent (for `Dsync` bookkeeping).
    pub parent_slot: usize,
    /// Grid handle of the parent (guards slot reuse on completion).
    pub parent_grid: u64,
}

/// Notification that a CTA has finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedCta {
    /// Grid-instance handle the CTA belonged to.
    pub grid_handle: u64,
    /// SM-local slot index that was freed.
    pub slot: usize,
}

/// Everything produced by one SM cycle.
///
/// The buffers are drained in place by the device each cycle (retaining
/// their capacity), so the steady-state hot path performs no allocation.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Off-chip memory requests to route through the interconnect, in issue
    /// order.
    pub mem_requests: Vec<MemRequest>,
    /// Deferred functional stores/atomics, in issue order; committed via
    /// [`SmCore::commit_mem_ops`](crate::SmCore::commit_mem_ops).
    pub mem_ops: Vec<MemOp>,
    /// CDP child launches.
    pub launches: Vec<DeviceLaunch>,
    /// CTAs that completed this cycle.
    pub completed: Vec<CompletedCta>,
    /// Guest faults raised this cycle.
    pub traps: Vec<Trap>,
    /// Warp-instructions issued; accumulates across calls (the device reads
    /// it once per device cycle as a forward-progress signal and resets it).
    pub issued: u64,
}

use crate::core::Trap;

/// The SM's side of the port boundary: one inbound reply queue plus the
/// outbound [`TickOutput`]. Owned one-per-SM by the device and handed to
/// [`SmCore::tick`](crate::SmCore::tick) each cycle.
#[derive(Debug, Default)]
pub struct SmPorts {
    /// Memory-system replies (request ids), delivered to the SM at the
    /// start of its next tick in arrival order.
    pub replies: Vec<u64>,
    /// Everything the SM produced this cycle.
    pub out: TickOutput,
}

impl SmPorts {
    /// Empty ports.
    pub fn new() -> Self {
        SmPorts::default()
    }
}
