//! Per-SM statistics: instruction mix, memory-space mix, warp occupancy and
//! the pipeline-stall breakdown of Figure 5.

use ggpu_isa::{InstrClass, Space, WARP_SIZE};

/// Why a scheduler slot issued nothing in a given cycle (Figure 5
/// categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// All candidate warps are waiting on off-chip memory.
    MemLatency,
    /// All candidate warps are in a post-branch control-hazard window.
    ControlHazard,
    /// All candidate warps are waiting on an ALU result (RAW hazard).
    DataHazard,
    /// All candidate warps are parked at a CTA barrier or device sync.
    Barrier,
    /// The SM has no resident work but the device is busy setting up or
    /// draining a kernel (the paper's "functional done").
    FunctionalDone,
    /// The SM has no work at all.
    Idle,
}

impl StallReason {
    /// All reasons, in the order used for reporting.
    pub const ALL: [StallReason; 6] = [
        StallReason::MemLatency,
        StallReason::ControlHazard,
        StallReason::DataHazard,
        StallReason::Barrier,
        StallReason::FunctionalDone,
        StallReason::Idle,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::MemLatency => "mem_latency",
            StallReason::ControlHazard => "control_hazard",
            StallReason::DataHazard => "data_hazard",
            StallReason::Barrier => "barrier",
            StallReason::FunctionalDone => "functional_done",
            StallReason::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        match self {
            StallReason::MemLatency => 0,
            StallReason::ControlHazard => 1,
            StallReason::DataHazard => 2,
            StallReason::Barrier => 3,
            StallReason::FunctionalDone => 4,
            StallReason::Idle => 5,
        }
    }
}

/// Scheduler-slot stall cycle counts by reason.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown([u64; 6]);

impl StallBreakdown {
    /// Record `cycles` of stall for `reason`.
    pub fn add(&mut self, reason: StallReason, cycles: u64) {
        self.0[reason.index()] += cycles;
    }

    /// Cycles stalled for `reason`.
    pub fn get(&self, reason: StallReason) -> u64 {
        self.0[reason.index()]
    }

    /// Total stall cycles.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Fraction of stalls attributed to `reason`; zero when no stalls.
    pub fn fraction(&self, reason: StallReason) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(reason) as f64 / t as f64
        }
    }

    /// Merge another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for i in 0..6 {
            self.0[i] += other.0[i];
        }
    }

    /// Counter delta since `base` (per-reason saturating subtraction), for
    /// interval sampling and per-kernel counter scoping.
    pub fn delta_since(&self, base: &StallBreakdown) -> StallBreakdown {
        let mut d = StallBreakdown::default();
        for i in 0..6 {
            d.0[i] = self.0[i].saturating_sub(base.0[i]);
        }
        d
    }
}

fn class_index(c: InstrClass) -> usize {
    match c {
        InstrClass::Int => 0,
        InstrClass::Fp => 1,
        InstrClass::LdSt => 2,
        InstrClass::Sfu => 3,
        InstrClass::Ctrl => 4,
    }
}

fn space_index(s: Space) -> usize {
    match s {
        Space::Shared => 0,
        Space::Tex => 1,
        Space::Const => 2,
        Space::Param => 3,
        Space::Local => 4,
        Space::Global => 5,
    }
}

/// Full per-SM counter set, merged across SMs by the device.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SmStats {
    /// Cycles this SM was clocked while the kernel ran.
    pub cycles: u64,
    /// Warp-instructions issued.
    pub issued: u64,
    /// Thread-instructions executed (issued × active lanes).
    pub thread_instrs: u64,
    /// Instruction mix by [`InstrClass`] (int, fp, ldst, sfu, ctrl).
    pub instr_mix: [u64; 5],
    /// Memory instructions by [`Space`] (shared, tex, const, param, local,
    /// global) — Figure 9.
    pub mem_space: [u64; 6],
    /// Warp-occupancy histogram: entry `i` counts issues with `i+1` active
    /// lanes — Figure 10.
    pub occupancy: [u64; WARP_SIZE],
    /// Stall breakdown — Figure 5.
    pub stalls: StallBreakdown,
    /// Extra cycles lost to shared-memory bank conflicts.
    pub bank_conflict_cycles: u64,
    /// Memory transactions sent off-chip.
    pub offchip_txns: u64,
    /// CTAs completed.
    pub ctas_completed: u64,
    /// Child-kernel launches issued (CDP).
    pub device_launches: u64,
}

impl SmStats {
    /// Record an issued warp-instruction.
    pub fn record_issue(&mut self, class: InstrClass, active_lanes: u32) {
        self.issued += 1;
        self.thread_instrs += active_lanes as u64;
        self.instr_mix[class_index(class)] += 1;
        if active_lanes >= 1 {
            self.occupancy[(active_lanes as usize - 1).min(WARP_SIZE - 1)] += 1;
        }
    }

    /// Record a memory instruction's space.
    pub fn record_mem(&mut self, space: Space) {
        self.mem_space[space_index(space)] += 1;
    }

    /// Instruction count for one class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        self.instr_mix[class_index(class)]
    }

    /// Memory-instruction count for one space.
    pub fn space_count(&self, space: Space) -> u64 {
        self.mem_space[space_index(space)]
    }

    /// Fraction of issued instructions in `class`; zero when nothing issued.
    /// Over all classes the fractions sum to exactly 1.0 (or 0.0 when idle).
    pub fn class_fraction(&self, class: InstrClass) -> f64 {
        let total: u64 = self.instr_mix.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.instr_mix[class_index(class)] as f64 / total as f64
        }
    }

    /// Fraction of memory instructions touching `space`; zero when no
    /// memory instructions were issued.
    pub fn space_fraction(&self, space: Space) -> f64 {
        let total: u64 = self.mem_space.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.mem_space[space_index(space)] as f64 / total as f64
        }
    }

    /// Mean active lanes per issued warp-instruction; zero when idle.
    pub fn avg_active_lanes(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.thread_instrs as f64 / self.issued as f64
        }
    }

    /// Counter delta since `base` (field-wise saturating subtraction).
    ///
    /// `cycles` subtracts directly: merged SM cycles are a max over SMs and
    /// therefore monotonically non-decreasing over a run, so the delta is
    /// the cycles elapsed in the window.
    pub fn delta_since(&self, base: &SmStats) -> SmStats {
        let mut d = SmStats {
            cycles: self.cycles.saturating_sub(base.cycles),
            issued: self.issued.saturating_sub(base.issued),
            thread_instrs: self.thread_instrs.saturating_sub(base.thread_instrs),
            stalls: self.stalls.delta_since(&base.stalls),
            bank_conflict_cycles: self
                .bank_conflict_cycles
                .saturating_sub(base.bank_conflict_cycles),
            offchip_txns: self.offchip_txns.saturating_sub(base.offchip_txns),
            ctas_completed: self.ctas_completed.saturating_sub(base.ctas_completed),
            device_launches: self.device_launches.saturating_sub(base.device_launches),
            ..SmStats::default()
        };
        for i in 0..5 {
            d.instr_mix[i] = self.instr_mix[i].saturating_sub(base.instr_mix[i]);
        }
        for i in 0..6 {
            d.mem_space[i] = self.mem_space[i].saturating_sub(base.mem_space[i]);
        }
        for i in 0..WARP_SIZE {
            d.occupancy[i] = self.occupancy[i].saturating_sub(base.occupancy[i]);
        }
        d
    }

    /// Instructions per cycle (warp-instructions / SM cycles).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// Fraction of issues whose active-lane count falls within
    /// `[lo, hi]` (1-based, inclusive) — e.g. `occupancy_fraction(29, 32)`
    /// for the paper's W29-32 bucket.
    pub fn occupancy_fraction(&self, lo: u32, hi: u32) -> f64 {
        let total: u64 = self.occupancy.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = (lo..=hi.min(WARP_SIZE as u32))
            .map(|w| self.occupancy[w as usize - 1])
            .sum();
        sum as f64 / total as f64
    }

    /// Merge another SM's counters into this one (device-level aggregation).
    pub fn merge(&mut self, other: &SmStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.issued += other.issued;
        self.thread_instrs += other.thread_instrs;
        for i in 0..5 {
            self.instr_mix[i] += other.instr_mix[i];
        }
        for i in 0..6 {
            self.mem_space[i] += other.mem_space[i];
        }
        for i in 0..WARP_SIZE {
            self.occupancy[i] += other.occupancy[i];
        }
        self.stalls.merge(&other.stalls);
        self.bank_conflict_cycles += other.bank_conflict_cycles;
        self.offchip_txns += other.offchip_txns;
        self.ctas_completed += other.ctas_completed;
        self.device_launches += other.device_launches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_breakdown_fractions() {
        let mut s = StallBreakdown::default();
        s.add(StallReason::MemLatency, 75);
        s.add(StallReason::Idle, 25);
        assert_eq!(s.total(), 100);
        assert_eq!(s.fraction(StallReason::MemLatency), 0.75);
        assert_eq!(s.get(StallReason::Idle), 25);
        assert_eq!(s.fraction(StallReason::Barrier), 0.0);
    }

    #[test]
    fn issue_recording() {
        let mut s = SmStats::default();
        s.record_issue(InstrClass::Int, 32);
        s.record_issue(InstrClass::Fp, 1);
        s.record_issue(InstrClass::LdSt, 16);
        s.record_mem(Space::Global);
        assert_eq!(s.issued, 3);
        assert_eq!(s.thread_instrs, 49);
        assert_eq!(s.class_count(InstrClass::Int), 1);
        assert_eq!(s.space_count(Space::Global), 1);
        assert_eq!(s.occupancy[31], 1);
        assert_eq!(s.occupancy[0], 1);
        assert_eq!(s.occupancy[15], 1);
    }

    #[test]
    fn occupancy_buckets() {
        let mut s = SmStats::default();
        for lanes in [1, 4, 29, 32, 32] {
            s.record_issue(InstrClass::Int, lanes);
        }
        assert!((s.occupancy_fraction(29, 32) - 0.6).abs() < 1e-12);
        assert!((s.occupancy_fraction(1, 4) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SmStats {
            cycles: 100,
            ..SmStats::default()
        };
        a.record_issue(InstrClass::Int, 32);
        let mut b = SmStats {
            cycles: 150,
            ..SmStats::default()
        };
        b.record_issue(InstrClass::Fp, 32);
        b.stalls.add(StallReason::MemLatency, 10);
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.issued, 2);
        assert_eq!(a.stalls.get(StallReason::MemLatency), 10);
    }

    #[test]
    fn delta_since_recovers_window() {
        let mut base = SmStats::default();
        base.record_issue(InstrClass::Int, 32);
        base.stalls.add(StallReason::MemLatency, 5);
        base.cycles = 100;
        let mut now = base.clone();
        now.record_issue(InstrClass::Fp, 16);
        now.record_mem(Space::Shared);
        now.stalls.add(StallReason::Barrier, 3);
        now.cycles = 180;
        let d = now.delta_since(&base);
        assert_eq!(d.cycles, 80);
        assert_eq!(d.issued, 1);
        assert_eq!(d.thread_instrs, 16);
        assert_eq!(d.class_count(InstrClass::Fp), 1);
        assert_eq!(d.class_count(InstrClass::Int), 0);
        assert_eq!(d.space_count(Space::Shared), 1);
        assert_eq!(d.stalls.get(StallReason::Barrier), 3);
        assert_eq!(d.stalls.get(StallReason::MemLatency), 0);
        assert_eq!(d.occupancy[15], 1);
        assert_eq!(d.occupancy[31], 0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut s = SmStats::default();
        assert_eq!(s.class_fraction(InstrClass::Int), 0.0);
        assert_eq!(s.space_fraction(Space::Global), 0.0);
        s.record_issue(InstrClass::Int, 32);
        s.record_issue(InstrClass::Fp, 32);
        s.record_issue(InstrClass::LdSt, 8);
        s.record_mem(Space::Global);
        s.record_mem(Space::Shared);
        let class_sum: f64 = [
            InstrClass::Int,
            InstrClass::Fp,
            InstrClass::LdSt,
            InstrClass::Sfu,
            InstrClass::Ctrl,
        ]
        .iter()
        .map(|&c| s.class_fraction(c))
        .sum();
        assert!((class_sum - 1.0).abs() < 1e-12);
        let space_sum: f64 = Space::ALL.iter().map(|&sp| s.space_fraction(sp)).sum();
        assert!((space_sum - 1.0).abs() < 1e-12);
        assert!((s.avg_active_lanes() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn ipc() {
        let mut s = SmStats::default();
        assert_eq!(s.ipc(), 0.0);
        s.cycles = 10;
        s.record_issue(InstrClass::Int, 32);
        s.record_issue(InstrClass::Int, 32);
        assert!((s.ipc() - 0.2).abs() < 1e-12);
    }
}
