//! Warp execution context: SIMT reconvergence stack, per-lane registers,
//! and scoreboard timing state.

use ggpu_isa::{Reg, WARP_SIZE};

/// Full warp mask (all 32 lanes active).
pub const FULL_MASK: u32 = u32::MAX;

/// Sentinel reconvergence PC for the base SIMT entry (never popped).
pub const NO_RECONV: usize = usize::MAX;

/// One entry of the SIMT reconvergence stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimtEntry {
    /// Next PC for this execution path.
    pub pc: usize,
    /// Reconvergence PC (immediate post-dominator); the entry pops when
    /// `pc == rpc`.
    pub rpc: usize,
    /// Active lanes on this path.
    pub mask: u32,
}

/// What a warp is parked on, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpBlock {
    /// Runnable.
    None,
    /// Waiting at a CTA barrier.
    Barrier,
    /// Waiting for child kernels (`cudaDeviceSynchronize`).
    Dsync,
    /// Raised a guest fault; permanently parked until the device resets.
    Trapped,
}

/// Why a warp most recently could not issue (for stall classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// Ready to issue.
    Ready,
    /// Waiting on an outstanding memory load.
    Memory,
    /// In a post-branch control-hazard window.
    Control,
    /// Waiting on an ALU result.
    Data,
    /// Parked at a barrier or device sync.
    Sync,
}

/// A warp's architectural and micro-architectural state.
#[derive(Debug, Clone)]
pub struct Warp {
    /// SIMT stack; the top entry is the executing path.
    pub stack: Vec<SimtEntry>,
    /// Per-lane registers, laid out `reg * 32 + lane`.
    pub regs: Vec<u64>,
    /// Cycle at which each register's value is available (RAW timing).
    pub reg_ready: Vec<u64>,
    /// Outstanding memory fills targeting each register.
    pub reg_pending: Vec<u16>,
    /// Earliest cycle this warp may issue again.
    pub next_issue_at: u64,
    /// Whether the post-issue window is a control hazard (vs data).
    pub issue_block_is_control: bool,
    /// Barrier / device-sync parking.
    pub block: WarpBlock,
    /// Warp has executed `Exit`.
    pub done: bool,
    /// Index of the owning CTA slot on the SM.
    pub cta_slot: usize,
    /// Warp index within its CTA.
    pub warp_in_cta: u32,
    /// Monotonic age for GTO/OLD scheduling (smaller = older).
    pub age: u64,
}

impl Warp {
    /// Create a warp starting at PC 0 with `active` initial lanes.
    pub fn new(
        regs_per_thread: u32,
        active: u32,
        cta_slot: usize,
        warp_in_cta: u32,
        age: u64,
    ) -> Self {
        let n = regs_per_thread.max(1) as usize;
        Warp {
            stack: vec![SimtEntry {
                pc: 0,
                rpc: NO_RECONV,
                mask: active,
            }],
            regs: vec![0; n * WARP_SIZE],
            reg_ready: vec![0; n],
            reg_pending: vec![0; n],
            next_issue_at: 0,
            issue_block_is_control: false,
            block: WarpBlock::None,
            done: false,
            cta_slot,
            warp_in_cta,
            age,
        }
    }

    /// Pop reconverged SIMT entries, returning the current entry. `None`
    /// when the stack would underflow (warp must be `done`).
    pub fn reconverge(&mut self) -> Option<SimtEntry> {
        while let Some(top) = self.stack.last() {
            if top.pc == top.rpc {
                self.stack.pop();
            } else {
                return Some(*top);
            }
        }
        None
    }

    /// Active mask of the current path (0 when done/underflowed).
    pub fn active_mask(&mut self) -> u32 {
        self.reconverge().map(|e| e.mask).unwrap_or(0)
    }

    /// Read register `r` in `lane`.
    #[inline]
    pub fn read(&self, r: Reg, lane: usize) -> u64 {
        self.regs[r.0 as usize * WARP_SIZE + lane]
    }

    /// Write register `r` in `lane`.
    #[inline]
    pub fn write(&mut self, r: Reg, lane: usize, v: u64) {
        self.regs[r.0 as usize * WARP_SIZE + lane] = v;
    }

    /// Advance the current path's PC by one instruction.
    pub fn advance_pc(&mut self) {
        if let Some(top) = self.stack.last_mut() {
            top.pc += 1;
        }
    }

    /// Apply a (possibly divergent) branch outcome.
    ///
    /// `taken` is the set of active lanes taking the branch; the current
    /// entry's mask minus `taken` falls through. On divergence the current
    /// entry becomes the reconvergence continuation and both paths are
    /// pushed (taken executes first).
    pub fn branch(&mut self, taken: u32, target: usize, fallthrough: usize, reconv: usize) {
        let top = self.stack.last_mut().expect("branch on empty SIMT stack");
        let mask = top.mask;
        let taken = taken & mask;
        let not_taken = mask & !taken;
        if taken == 0 {
            top.pc = fallthrough;
        } else if not_taken == 0 {
            top.pc = target;
        } else {
            top.pc = reconv;
            self.stack.push(SimtEntry {
                pc: fallthrough,
                rpc: reconv,
                mask: not_taken,
            });
            self.stack.push(SimtEntry {
                pc: target,
                rpc: reconv,
                mask: taken,
            });
        }
    }

    /// Whether register timing permits reading `r` at `now`.
    #[inline]
    pub fn reg_ok(&self, r: Reg, now: u64) -> bool {
        let i = r.0 as usize;
        self.reg_pending[i] == 0 && self.reg_ready[i] <= now
    }

    /// Classify readiness at `now` given the instruction's registers.
    pub fn wait_kind(&self, srcs: &[Option<Reg>; 3], dst: Option<Reg>, now: u64) -> WaitKind {
        if self.block != WarpBlock::None {
            return WaitKind::Sync;
        }
        if self.next_issue_at > now {
            return if self.issue_block_is_control {
                WaitKind::Control
            } else {
                WaitKind::Data
            };
        }
        let mut data = false;
        for r in srcs.iter().flatten().copied().chain(dst) {
            let i = r.0 as usize;
            if self.reg_pending[i] > 0 {
                return WaitKind::Memory;
            }
            if self.reg_ready[i] > now {
                data = true;
            }
        }
        if data {
            WaitKind::Data
        } else {
            WaitKind::Ready
        }
    }
}

/// Build a mask with the lowest `n` lanes set.
pub fn lane_mask(n: u32) -> u32 {
    if n >= WARP_SIZE as u32 {
        FULL_MASK
    } else {
        (1u32 << n) - 1
    }
}

/// Iterate over set lanes of a mask.
pub fn lanes(mask: u32) -> impl Iterator<Item = usize> {
    (0..WARP_SIZE).filter(move |l| mask & (1 << l) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_mask_edges() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(32), FULL_MASK);
        assert_eq!(lane_mask(5), 0b11111);
    }

    #[test]
    fn register_read_write_per_lane() {
        let mut w = Warp::new(4, FULL_MASK, 0, 0, 0);
        w.write(Reg(2), 7, 42);
        assert_eq!(w.read(Reg(2), 7), 42);
        assert_eq!(w.read(Reg(2), 6), 0);
    }

    #[test]
    fn uniform_branch_no_divergence() {
        let mut w = Warp::new(1, FULL_MASK, 0, 0, 0);
        w.branch(FULL_MASK, 10, 1, 20);
        assert_eq!(w.stack.len(), 1);
        assert_eq!(w.reconverge().unwrap().pc, 10);

        let mut w2 = Warp::new(1, FULL_MASK, 0, 0, 0);
        w2.branch(0, 10, 1, 20);
        assert_eq!(w2.reconverge().unwrap().pc, 1);
    }

    #[test]
    fn divergent_branch_pushes_both_paths_taken_first() {
        let mut w = Warp::new(1, FULL_MASK, 0, 0, 0);
        w.branch(0xFFFF, 10, 1, 20);
        assert_eq!(w.stack.len(), 3);
        let top = w.reconverge().unwrap();
        assert_eq!(top.pc, 10);
        assert_eq!(top.mask, 0xFFFF);
        assert_eq!(top.rpc, 20);
        // The continuation entry waits at the reconvergence point.
        assert_eq!(w.stack[0].pc, 20);
        assert_eq!(w.stack[0].mask, FULL_MASK);
    }

    #[test]
    fn reconvergence_pops_and_restores_full_mask() {
        let mut w = Warp::new(1, FULL_MASK, 0, 0, 0);
        w.branch(0xFF, 10, 1, 20);
        // Taken path runs to the reconvergence point.
        w.stack.last_mut().unwrap().pc = 20;
        let e = w.reconverge().unwrap();
        assert_eq!(e.pc, 1, "fallthrough path executes next");
        assert_eq!(e.mask, FULL_MASK & !0xFF);
        // Fallthrough path reaches reconvergence too.
        w.stack.last_mut().unwrap().pc = 20;
        let e = w.reconverge().unwrap();
        assert_eq!(e.pc, 20);
        assert_eq!(e.mask, FULL_MASK, "full mask restored after reconvergence");
    }

    #[test]
    fn nested_divergence() {
        let mut w = Warp::new(1, FULL_MASK, 0, 0, 0);
        w.branch(0xFFFF, 10, 1, 100); // outer
        w.branch(0xF, 30, 11, 50); // inner, within taken path
        let top = w.reconverge().unwrap();
        assert_eq!(top.pc, 30);
        assert_eq!(top.mask, 0xF);
        assert_eq!(top.rpc, 50);
        assert_eq!(w.stack.len(), 5);
    }

    #[test]
    fn wait_kinds() {
        let mut w = Warp::new(4, FULL_MASK, 0, 0, 0);
        let srcs = [Some(Reg(1)), None, None];
        assert_eq!(w.wait_kind(&srcs, Some(Reg(0)), 10), WaitKind::Ready);

        w.reg_pending[1] = 1;
        assert_eq!(w.wait_kind(&srcs, Some(Reg(0)), 10), WaitKind::Memory);
        w.reg_pending[1] = 0;

        w.reg_ready[1] = 20;
        assert_eq!(w.wait_kind(&srcs, Some(Reg(0)), 10), WaitKind::Data);
        assert_eq!(w.wait_kind(&srcs, Some(Reg(0)), 20), WaitKind::Ready);

        w.next_issue_at = 30;
        w.issue_block_is_control = true;
        assert_eq!(w.wait_kind(&srcs, None, 25), WaitKind::Control);

        w.block = WarpBlock::Barrier;
        assert_eq!(w.wait_kind(&srcs, None, 25), WaitKind::Sync);
    }

    #[test]
    fn pending_dst_blocks_as_memory() {
        let mut w = Warp::new(4, FULL_MASK, 0, 0, 0);
        w.reg_pending[0] = 2;
        assert_eq!(
            w.wait_kind(&[None, None, None], Some(Reg(0)), 0),
            WaitKind::Memory
        );
    }

    #[test]
    fn lanes_iterator() {
        assert_eq!(lanes(0b1011).collect::<Vec<_>>(), vec![0, 1, 3]);
        assert_eq!(lanes(0).count(), 0);
        assert_eq!(lanes(FULL_MASK).count(), 32);
    }
}
