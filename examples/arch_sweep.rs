//! Architecture exploration: sweep one microarchitectural knob and watch a
//! genomics workload respond — the paper's core use case ("facilitate GPU
//! architecture development for genomics analysis").
//!
//! Sweeps L1 capacity and warp scheduler for the GASAL2-KSW benchmark,
//! the most cache-sensitive kernel in the suite (Figure 12).
//!
//! ```text
//! cargo run --release --example arch_sweep
//! ```

use ggpu_core::{benchmark, GpuConfig, Scale};
use ggpu_sm::SchedPolicy;

fn main() {
    let bench = benchmark(Scale::Tiny, "GKSW").expect("GKSW is a suite benchmark");

    println!("GASAL2-KSW vs L1 capacity (RTX 3070 baseline elsewhere):");
    let mut baseline_cycles = None;
    for l1_kb in [0u64, 32, 128, 512] {
        let config = GpuConfig::rtx3070().with_cache_sizes(l1_kb * 1024, 4 * 1024 * 1024);
        let r = bench.run(&config, false);
        assert!(r.verified);
        let base = *baseline_cycles.get_or_insert(r.kernel_cycles);
        println!(
            "  L1 {:>4} KB: {:>9} cycles (speedup {:.2}x), L1 miss {:>5.1}%",
            l1_kb,
            r.kernel_cycles,
            base as f64 / r.kernel_cycles as f64,
            r.stats.l1.miss_rate() * 100.0
        );
    }

    println!("\nGASAL2-KSW vs warp scheduler:");
    for policy in [
        SchedPolicy::Lrr,
        SchedPolicy::Gto,
        SchedPolicy::Old,
        SchedPolicy::TwoLevel,
    ] {
        let mut config = GpuConfig::rtx3070();
        config.sm.policy = policy;
        let r = bench.run(&config, false);
        assert!(r.verified);
        println!(
            "  {policy}: {:>9} cycles, IPC {:.3}",
            r.kernel_cycles,
            r.stats.ipc()
        );
    }

    println!("\nGASAL2-KSW with a perfect (zero-latency) memory system:");
    let mut config = GpuConfig::rtx3070();
    config.sm.perfect_memory = true;
    let perfect = bench.run(&config, false);
    let real = bench.run(&GpuConfig::rtx3070(), false);
    assert!(perfect.verified && real.verified);
    println!(
        "  real {} cycles vs perfect {} cycles -> {:.2}x headroom",
        real.kernel_cycles,
        perfect.kernel_cycles,
        real.kernel_cycles as f64 / perfect.kernel_cycles as f64
    );
}
