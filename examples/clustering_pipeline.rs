//! Gene-sequence clustering two ways: the CPU nGIA-style reference and the
//! simulated-GPU CLUSTER benchmark, with an architecture question on top —
//! does the GPU clustering kernel care about L1 capacity?
//!
//! ```text
//! cargo run --release --example clustering_pipeline
//! ```

use ggpu_core::{benchmark, GpuConfig, Scale};
use ggpu_genomics::{greedy_cluster, sequence_family, ClusterParams};
use rand::SeedableRng;

fn main() {
    // --- CPU reference clustering over synthetic families ---------------
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut seqs: Vec<Vec<u8>> = Vec::new();
    for _ in 0..5 {
        for s in sequence_family(6, 220, 0.03, 0.002, &mut rng) {
            seqs.push(s.codes().to_vec());
        }
    }
    let clusters = greedy_cluster(&seqs, ClusterParams::default());
    println!(
        "CPU nGIA: {} sequences -> {} clusters",
        seqs.len(),
        clusters.len()
    );
    for (i, c) in clusters.iter().enumerate() {
        println!(
            "  cluster {i}: rep seq {} with {} members",
            c.representative,
            c.members.len()
        );
    }

    // --- The same algorithm as a GPU workload ---------------------------
    let bench = benchmark(Scale::Tiny, "CLUSTER").expect("CLUSTER is a suite benchmark");
    println!("\nGPU CLUSTER benchmark under two L1 configurations:");
    for (label, l1_bytes) in [("128KB L1 (baseline)", 128 * 1024u64), ("no L1", 0)] {
        let mut config = GpuConfig::rtx3070();
        config.sm.l1.bytes = l1_bytes;
        let r = bench.run(&config, false);
        assert!(r.verified);
        println!(
            "  {label:22} kernel cycles {:>9}, L2 miss {:>5.1}%, rounds {}",
            r.kernel_cycles,
            r.stats.l2.miss_rate() * 100.0,
            r.stats.host.kernel_launches,
        );
    }

    // And the CDP variant, which runs the whole greedy loop on-device.
    let config = GpuConfig::rtx3070();
    let cdp = bench.run(&config, true);
    assert!(cdp.verified);
    println!(
        "  CDP variant: 1 host launch, {} device-side child grids",
        cdp.stats.sm.device_launches
    );
}
