//! Fault-tolerant host API demo: guest faults become typed, recoverable
//! errors instead of panics.
//!
//! Shows (1) an out-of-bounds store trapping with full context, (2) the
//! device staying usable after `reset_fault`, (3) the forward-progress
//! watchdog converting an injected hang into a deadlock report, and
//! (4) non-sticky allocation/launch validation errors. With event tracing
//! enabled, both failures also land in the structured timeline, which this
//! example exports as a Perfetto-loadable Chrome trace.
//!
//! Run with: `cargo run --release --example fault_handling`

use ggpu_isa::{KernelBuilder, KernelId, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::{chrome_trace_json, FaultPlan, Gpu, GpuConfig, TraceEvent, TraceEventKind};

fn main() {
    // Kernel 0 stores 1 MiB past its buffer; kernel 1 behaves.
    let mut program = Program::new();
    let mut b = KernelBuilder::new("oob_store");
    let out = b.reg();
    b.ld_param(out, 0);
    b.st(Space::Global, Width::B64, Operand::imm(7), out, 1 << 20);
    b.exit();
    program.add(b.finish());

    let mut b = KernelBuilder::new("write_tids");
    let tid = b.global_tid();
    let out = b.reg();
    b.ld_param(out, 0);
    let oa = b.reg();
    b.imul(oa, tid, Operand::imm(8));
    b.iadd(oa, oa, Operand::reg(out));
    b.st(Space::Global, Width::B64, Operand::reg(tid), oa, 0);
    b.exit();
    let good = program.add(b.finish());

    let mut config = GpuConfig::test_small();
    config.trace = true;
    let clock_ghz = config.clock_ghz;
    let mut gpu = Gpu::new(program, config);
    let buf = gpu.malloc(64 * 8);

    println!("1. launching a kernel with an out-of-bounds store...");
    match gpu.try_run_kernel(KernelId(0), LaunchDims::linear(1, 1), &[buf.0]) {
        Ok(_) => unreachable!("the store must trap"),
        Err(e) => println!("   -> {e}"),
    }
    let fault_log: Vec<TraceEvent> = gpu.trace_events().to_vec();
    assert!(
        matches!(
            fault_log.last().map(|ev| &ev.kind),
            Some(TraceEventKind::Fault { .. })
        ),
        "the event timeline must end in the guest fault"
    );

    println!("2. the fault is sticky until reset_fault():");
    println!("   try_malloc  -> {}", gpu.try_malloc(8).unwrap_err());
    gpu.reset_fault();
    let cycles = gpu
        .try_run_kernel(good, LaunchDims::linear(2, 32), &[buf.0])
        .expect("device usable after reset");
    println!("   after reset_fault, `write_tids` ran in {cycles} cycles");

    println!("3. injecting a dropped memory reply (watchdog demo)...");
    let mut b = KernelBuilder::new("loader");
    let src = b.reg();
    b.ld_param(src, 0);
    let v = b.reg();
    b.ld(Space::Global, Width::B64, v, src, 0);
    b.st(Space::Global, Width::B64, Operand::reg(v), src, 8);
    b.exit();
    let mut p = Program::new();
    let kid = p.add(b.finish());
    let mut config = GpuConfig::test_small();
    config.trace = true;
    config.watchdog_cycles = 2_000;
    config.fault_plan = FaultPlan {
        drop_reply: Some(0),
        ..FaultPlan::default()
    };
    let mut gpu = Gpu::new(p, config);
    let buf = gpu.malloc(256);
    match gpu.try_run_kernel(kid, LaunchDims::linear(1, 1), &[buf.0]) {
        Ok(_) => unreachable!("the lost reply must hang the warp"),
        Err(e) => print!("   -> {e}"),
    }
    let deadlock_log: Vec<TraceEvent> = gpu.trace_events().to_vec();
    assert!(
        matches!(
            deadlock_log.last().map(|ev| &ev.kind),
            Some(TraceEventKind::Deadlock { .. })
        ),
        "the event timeline must end in the watchdog deadlock"
    );

    println!("4. allocation and launch validation (not sticky):");
    let mut config = GpuConfig::test_small();
    config.memory_limit = 1 << 20;
    let mut gpu = Gpu::new(Program::new(), config);
    println!(
        "   try_malloc(2 MiB) -> {}",
        gpu.try_malloc(2 << 20).unwrap_err()
    );
    println!(
        "   try_launch(bad id) -> {}",
        gpu.try_launch(KernelId(9), LaunchDims::linear(1, 32), &[])
            .unwrap_err()
    );
    println!("   device still healthy: fault = {:?}", gpu.fault());

    println!("5. exporting both failure timelines as a Chrome trace...");
    let logs = vec![
        ("oob-fault".to_string(), fault_log.as_slice()),
        ("watchdog-deadlock".to_string(), deadlock_log.as_slice()),
    ];
    let doc = chrome_trace_json(&logs, clock_ghz);
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/fault_trace.json";
    std::fs::write(path, doc).expect("write trace");
    println!("   wrote {path} — load it at https://ui.perfetto.dev");
}
