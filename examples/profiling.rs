//! Time-resolved profiling: per-kernel counter scoping, interval samples,
//! and a structured event trace for one benchmark (Smith-Waterman), in
//! both the plain and the CDP (device-launch) variants.
//!
//! ```text
//! cargo run --release --example profiling
//! ```
//!
//! Exports two machine-readable files (both validated by re-parsing
//! before this example exits, so CI catches malformed output):
//!
//! * `results/profiling_stats.json` — the full [`ProfileReport`] per
//!   variant: end-of-run counters, per-kernel deltas, interval samples.
//! * `results/profiling_trace.json` — Chrome-trace timeline; load it at
//!   <https://ui.perfetto.dev> (one process row per variant, one thread
//!   row per CDP nesting depth).

use ggpu_core::json::{Json, JsonWriter};
use ggpu_core::{benchmark, chrome_trace_json, GpuConfig, ProfileReport, Scale, TraceEvent};

fn main() {
    // Profiling is opt-in: interval sampling via `sample_interval_cycles`,
    // the event timeline via `trace`. Both default to off, in which case
    // the simulator's counters are bit-identical to a non-profiled run.
    let mut config = GpuConfig::rtx3070();
    config.sample_interval_cycles = 10_000;
    config.trace = true;

    let bench = benchmark(Scale::Tiny, "SW").expect("SW is a suite benchmark");
    let mut profiles: Vec<(String, ProfileReport)> = Vec::new();
    for cdp in [false, true] {
        let label = if cdp { "SW-CDP" } else { "SW" }.to_string();
        let result = bench.run(&config, cdp);
        assert!(result.verified, "{label}: device output must match oracle");
        let profile = *result.profile.expect("profiling was enabled");

        println!("== {label} ==");
        println!(
            "per-kernel records ({} kernels, {} CDP children):",
            profile.kernels.len(),
            profile.kernels.iter().filter(|k| k.is_cdp_child()).count()
        );
        for k in &profile.kernels {
            let role = if k.is_cdp_child() {
                format!(
                    "child of grid {} (depth {})",
                    k.parent.expect("child"),
                    k.depth
                )
            } else {
                "host-launched".to_string()
            };
            println!(
                "  grid {:3} {:12} [{role}] launch={} start={} retire={} instrs={} ipc={:.3}",
                k.grid,
                k.kernel,
                k.launch_cycle,
                k.start_cycle,
                k.retire_cycle,
                k.stats.sm.issued,
                k.ipc(),
            );
        }
        println!(
            "interval samples: {} windows of {} cycles ({} dropped)",
            profile.samples.len(),
            config.sample_interval_cycles,
            profile.samples_dropped
        );
        for s in profile.samples.iter().take(5) {
            println!(
                "  [{:6}..{:6}] ipc={:.3} occupancy={:.2} l1_miss={:.1}% dram_util={:.1}%",
                s.start_cycle,
                s.end_cycle,
                s.ipc(),
                s.occupancy(),
                s.l1_miss_rate() * 100.0,
                s.dram_utilization() * 100.0,
            );
        }
        println!(
            "trace events: {} ({} dropped)\n",
            profile.events.len(),
            profile.events_dropped
        );
        assert!(
            !profile.samples.is_empty(),
            "{label}: sampling must produce at least one window"
        );
        if cdp {
            assert!(
                profile.kernels.iter().any(|k| k.is_cdp_child()),
                "CDP run must record device-launched children"
            );
        }
        profiles.push((label, profile));
    }

    std::fs::create_dir_all("results").expect("create results/");

    // Combined stats export: one ProfileReport per variant, keyed by label.
    let mut w = JsonWriter::new();
    w.begin_obj();
    for (label, p) in &profiles {
        w.raw(label, &p.to_json());
    }
    w.end_obj();
    let stats_doc = w.finish();
    Json::parse(&stats_doc).expect("profiling_stats.json must be well-formed");
    std::fs::write("results/profiling_stats.json", &stats_doc).expect("write stats");
    println!(
        "wrote results/profiling_stats.json ({} bytes)",
        stats_doc.len()
    );

    // Combined timeline: one Chrome-trace process per variant.
    let logs: Vec<(String, &[TraceEvent])> = profiles
        .iter()
        .map(|(label, p)| (label.clone(), p.events.as_slice()))
        .collect();
    let trace_doc = chrome_trace_json(&logs, config.clock_ghz);
    Json::parse(&trace_doc).expect("profiling_trace.json must be well-formed");
    std::fs::write("results/profiling_trace.json", &trace_doc).expect("write trace");
    println!(
        "wrote results/profiling_trace.json ({} bytes)",
        trace_doc.len()
    );
    println!("open https://ui.perfetto.dev and drag the trace file in to view the timeline");
}
