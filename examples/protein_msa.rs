//! Protein multiple sequence alignment from a FASTA file: parse the
//! bundled dataset, align with the CPU center-star algorithm under
//! BLOSUM62, then run the same family shape through the simulated-GPU STAR
//! benchmark.
//!
//! ```text
//! cargo run --release --example protein_msa
//! ```

use ggpu_core::{benchmark, GpuConfig, Scale};
use ggpu_genomics::{center_star, encode_protein, parse_fasta, Blosum62, GapModel};

fn main() {
    let text = std::fs::read_to_string("data/mini_proteins.fasta")
        .expect("run from the repository root: data/mini_proteins.fasta");
    let records = parse_fasta(&text).expect("valid FASTA");
    println!("parsed {} protein records:", records.len());
    for r in &records {
        println!("  >{} ({} aa)", r.id, r.seq.len());
    }

    // Align the first family (records sharing the family1 prefix) with the
    // center-star algorithm under BLOSUM62.
    let family: Vec<Vec<u8>> = records
        .iter()
        .filter(|r| r.id.starts_with("family1"))
        .map(|r| r.seq.clone())
        .collect();
    let gaps = GapModel::Affine {
        open: 11,
        extend: 1,
    }; // protein defaults
    let msa = center_star(&family, &Blosum62, gaps);
    println!(
        "\ncenter-star MSA of family1 ({} rows x {} columns, center = record {}):",
        msa.rows.len(),
        msa.columns(),
        msa.center
    );
    for row in msa.to_strings(|c| c as char) {
        println!("  {row}");
    }
    let sp = msa.sp_score(&Blosum62, 5);
    println!("sum-of-pairs score: {sp}");
    assert!(sp > 0, "a real family aligns with positive SP score");

    // Index-encode for the GPU path (the kernels score via a BLOSUM62 table
    // in constant memory over residue indices).
    let encoded = encode_protein(&family[0]);
    println!(
        "\nindex-encoded first sequence (kernel input form): {:?}...",
        &encoded[..10]
    );

    // The STAR benchmark runs this workload shape on the simulated GPU.
    let bench = benchmark(Scale::Tiny, "STAR").expect("STAR is a suite benchmark");
    let r = bench.run(&GpuConfig::rtx3070(), true);
    assert!(r.verified);
    println!(
        "simulated STAR (CDP): {} — {} kernel cycles, {} device launches",
        r.detail, r.kernel_cycles, r.stats.sm.device_launches
    );
}
