//! Quickstart: run one Genomics-GPU benchmark on the simulated RTX 3070
//! and read the microarchitectural counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ggpu_core::{benchmark, GpuConfig, Scale};
use ggpu_sm::StallReason;

fn main() {
    // The suite's benchmarks are looked up by the abbreviations of
    // Table III: SW, NW, STAR, GG, GL, GKSW, GSG, CLUSTER, PairHMM, NvB.
    let bench = benchmark(Scale::Tiny, "SW").expect("SW is a suite benchmark");

    // The baseline configuration is the paper's Table I (RTX 3070).
    let config = GpuConfig::rtx3070();

    // Run the non-CDP variant; every run validates device results against
    // the CPU reference implementation before reporting statistics.
    let result = bench.run(&config, false);
    assert!(result.verified, "device output must match the CPU oracle");

    println!("{}", result.detail);
    println!("kernel cycles:      {}", result.kernel_cycles);
    println!("IPC:                {:.3}", result.stats.ipc());
    println!("kernel launches:    {}", result.stats.host.kernel_launches);
    println!("PCI transactions:   {}", result.stats.host.pci_count);
    println!(
        "L1 miss rate:       {:.1}%",
        result.stats.l1.miss_rate() * 100.0
    );
    println!(
        "L2 miss rate:       {:.1}%",
        result.stats.l2.miss_rate() * 100.0
    );
    println!(
        "DRAM efficiency:    {:.1}%",
        result.stats.dram.efficiency() * 100.0
    );
    println!(
        "memory stalls:      {:.1}% of stall cycles",
        result.stats.sm.stalls.fraction(StallReason::MemLatency) * 100.0
    );
    println!(
        "full-warp issues:   {:.1}%",
        result.stats.sm.occupancy_fraction(29, 32) * 100.0
    );

    // And the CDP (CUDA Dynamic Parallelism) variant of the same benchmark.
    let cdp = bench.run(&config, true);
    assert!(cdp.verified);
    println!(
        "\nCDP variant:        {} device-side launches, {} kernel cycles",
        cdp.stats.sm.device_launches, cdp.kernel_cycles
    );
}
