//! End-to-end serving telemetry demo: follow one request from admission
//! to device retirement on a single unified timeline.
//!
//! A small mixed-shape workload runs through `ggpu-serve` with a fault
//! plan that drops a memory reply mid-run — the watchdog kills the hung
//! grid, the service resets the stream and retries. The example then
//! walks the [`ggpu_serve::ServeReport`]:
//!
//! 1. the conservation ledger (`submitted == admitted + rejected`,
//!    `admitted == terminal outcomes`),
//! 2. the per-stage latency histograms with their percentiles,
//! 3. the slowest request's trail, joined to the device events its grids
//!    caused (launch → deadlock → relaunch → retire),
//! 4. and exports the unified host+device Chrome trace —
//!    `serving_telemetry_trace.json`, loadable at
//!    <https://ui.perfetto.dev> — where the host rows (admission queue
//!    depth, workers, tenants) and the device rows (streams, PCIe) share
//!    one cycle timeline.
//!
//! Run with: `cargo run --release --example serving_telemetry`

use ggpu_genomics::random_genome;
use ggpu_serve::{JobKind, Priority, ServeConfig, Service, Tenant};
use ggpu_sim::{FaultPlan, GpuConfig};
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(97);
    let genome = random_genome(600, &mut rng).codes().to_vec();

    let mut cfg = ServeConfig::test_small();
    cfg.gpu = GpuConfig::test_small();
    cfg.gpu.watchdog_cycles = 10_000;
    // Drop the 25th memory reply: one grid hangs, the watchdog kills it,
    // the service recovers the stream and retries the batch.
    cfg.gpu.fault_plan = FaultPlan {
        drop_reply: Some(25),
        ..FaultPlan::default()
    };
    cfg.workers = 3;
    cfg.max_batch = 4;
    cfg.fm_genome = genome.clone();
    let mut svc = Service::new(cfg).expect("build service");

    println!("1. submitting 24 mixed-shape jobs from 3 tenants...");
    for i in 0..24u32 {
        let kind = match i % 3 {
            0 => JobKind::Pairwise {
                query: (0..40).map(|_| rng.gen_range(0..4u8)).collect(),
                target: (0..44).map(|_| rng.gen_range(0..4u8)).collect(),
            },
            1 => {
                let s = rng.gen_range(0..600 - 16);
                JobKind::FmMap {
                    read: genome[s..s + 16].to_vec(),
                }
            }
            _ => {
                let hap: Vec<u8> = (0..14).map(|_| rng.gen_range(0..4u8)).collect();
                JobKind::PairHmm {
                    read: hap[..10].to_vec(),
                    quals: vec![30; 10],
                    hap,
                }
            }
        };
        svc.submit(Tenant(i % 3), Priority(1), None, kind)
            .expect("admit");
    }
    svc.run_until_idle(200).expect("no device-wide fault");
    let report = svc.report();

    let m = report.metrics;
    println!(
        "2. conservation: {} submitted = {} admitted + {} rejected; \
         {} admitted = {}+{}+{}+{} terminal",
        m.submitted,
        m.admitted,
        m.rejected_overload + m.rejected_quota + m.rejected_shape,
        m.admitted,
        m.completed,
        m.failed,
        m.deadline_exceeded,
        m.shed
    );
    assert_eq!(
        m.submitted,
        m.admitted + m.rejected_overload + m.rejected_quota + m.rejected_shape
    );
    assert_eq!(
        m.admitted,
        m.completed + m.failed + m.deadline_exceeded + m.shed
    );
    println!(
        "   the injected hang cost {} stream reset(s) and {} retry(ies)",
        m.stream_resets, m.retries
    );

    println!("3. latency percentiles (cycles):");
    for (stage, h) in [
        ("queue_wait", &report.global.queue_wait),
        ("batch_formation", &report.global.batch_formation),
        ("device_exec", &report.global.device_exec),
        ("e2e", &report.global.e2e),
    ] {
        println!(
            "   {:>16}: n={:<3} p50={:<8} p90={:<8} p99={:<8} max={}",
            stage,
            h.count(),
            h.percentile(50.0),
            h.percentile(90.0),
            h.percentile(99.0),
            h.max()
        );
    }

    let slowest = report.slowest(1)[0];
    println!(
        "4. slowest request: job {} (tenant {}, {}, {}) took {} cycles over {} launch(es)",
        slowest.job.0,
        slowest.tenant.0,
        slowest.shape,
        slowest.outcome.tag(),
        slowest.e2e,
        slowest.grids.len()
    );
    for ev in report.causal_device_events(slowest) {
        println!("   device: {:>14} @ cycle {}", ev.kind.tag(), ev.cycle);
    }

    let trace = report.chrome_trace();
    let path = "serving_telemetry_trace.json";
    std::fs::write(path, &trace).expect("write trace");
    println!(
        "5. wrote {path} ({} bytes) — load it at https://ui.perfetto.dev to see\n\
         \u{20}  the host rows (queue depth, workers, tenants) and device streams\n\
         \u{20}  on one timeline",
        trace.len()
    );
}
