//! A small variant-calling pipeline on the CPU substrate: simulate a
//! genome and reads, map the reads with the FM-index mapper, pile up a
//! candidate SNP site, and genotype it with the Pair-HMM — the workflow
//! the paper's introduction motivates (GATK-style analysis).
//!
//! ```text
//! cargo run --release --example variant_calling
//! ```

use ggpu_genomics::{
    call_variants, genotype_likelihoods, random_genome, simulate_reads, CallerParams, DnaSeq,
    Genotype, Mapper, MapperParams, PairHmm, Pileup, ReadProfile,
};
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(20260707);

    // Reference genome and a heterozygous SNP we plant at a known locus.
    let reference = random_genome(30_000, &mut rng);
    let snp_pos = 12_345usize;
    let ref_base = reference.codes()[snp_pos];
    let alt_base = (ref_base + 1) % 4;

    // The "donor" carries the alternate allele on one haplotype: half the
    // reads covering the locus carry `alt_base`.
    let mut donor = reference.codes().to_vec();
    donor[snp_pos] = alt_base;
    let donor = DnaSeq::from_codes(donor);

    let profile = ReadProfile {
        length: 100,
        sub_rate: 0.002,
        ..ReadProfile::default()
    };
    let mut reads = simulate_reads(&reference, 900, profile, &mut rng);
    reads.extend(simulate_reads(&donor, 900, profile, &mut rng));
    println!("simulated {} reads of {}bp", reads.len(), profile.length);

    // Map everything against the reference and build the genome-wide
    // pileup with the variant-selection substrate.
    let mapper = Mapper::new(reference.clone(), MapperParams::default());
    let mut pileup = Pileup::new(reference.len());
    let mut placements: Vec<(Vec<u8>, Vec<u8>, usize)> = Vec::new();
    let mut mapped = 0usize;
    for read in &reads {
        let Some(hit) = mapper.map(&read.seq) else {
            continue;
        };
        mapped += 1;
        // Gapless placements only: a read with an indel would smear
        // mismatches across the pileup (real callers realign around gaps).
        if hit.alignment.cigar.len() != 1 {
            continue;
        }
        let seq = if hit.reverse {
            read.seq.revcomp()
        } else {
            read.seq.clone()
        };
        pileup.add_read(hit.position, seq.codes());
        placements.push((seq.codes().to_vec(), vec![30u8; seq.len()], hit.position));
    }
    println!("mapped {mapped}/{} reads", reads.len());
    let c = pileup.counts(snp_pos);
    println!(
        "pileup at locus {snp_pos}: A={} C={} G={} T={} (depth {})",
        c[0],
        c[1],
        c[2],
        c[3],
        pileup.depth(snp_pos)
    );

    // Pileup-based variant calling across the genome.
    let variants = call_variants(&reference, &pileup, CallerParams::default());
    println!("called {} candidate variants genome-wide", variants.len());
    let planted = variants
        .iter()
        .find(|v| v.pos == snp_pos)
        .expect("the planted SNP must be called");
    println!(
        "planted SNP called: pos {} {}→{} depth {} alt {} genotype {}",
        planted.pos,
        ggpu_genomics::decode_base(planted.ref_base) as char,
        ggpu_genomics::decode_base(planted.alt_base) as char,
        planted.depth,
        planted.alt_count,
        planted.genotype
    );
    assert_eq!(planted.alt_base, alt_base);
    assert_eq!(planted.genotype, Genotype::Het, "the donor is heterozygous");

    // Pair-HMM refinement, GATK-style.
    let hmm = PairHmm::default();
    let (lk_ref, lk_alt, used) =
        genotype_likelihoods(&reference, &placements, snp_pos, alt_base, 30, &hmm);
    println!(
        "Pair-HMM over {used} covering reads: log10 L(ref)={lk_ref:.1}, log10 L(alt)={lk_alt:.1}"
    );
    let _ = ref_base;
}
