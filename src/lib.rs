//! Genomics-GPU umbrella crate.
