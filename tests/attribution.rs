//! Integration tests for the attribution profiler: per-PC (code axis) and
//! per-unit (space axis) counters must telescope exactly to the aggregate
//! [`RunStats`], be bit-identical at any engine thread count, and cost
//! nothing when disabled.

use ggpu_core::{benchmark, GpuConfig, ProfileReport, RunStats, Scale, StallReason};

/// Run the GG pairwise workload (CDP on, so child launches and parent
/// overlap exercise the attribution paths) with per-PC attribution.
fn profiled_run(threads: usize) -> (RunStats, ProfileReport, usize) {
    let config = GpuConfig::rtx3070()
        .with_attribution(true)
        .with_sim_threads(threads);
    let b = benchmark(Scale::Tiny, "GG").expect("GG is registered");
    let r = b.run(&config, true);
    assert!(r.verified, "GG must verify");
    let profile = *r.profile.expect("attribution enables profiling");
    (r.stats, profile, r.sim_threads)
}

#[test]
fn per_pc_counters_telescope_to_run_stats() {
    for threads in [1usize, 4] {
        let (stats, profile, resolved) = profiled_run(threads);
        assert_eq!(resolved, threads, "tiny config still has >= 4 SMs");
        let pc = profile.pc.as_ref().expect("attribution was on");

        assert_eq!(
            pc.total(|c| c.issues),
            stats.sm.issued,
            "issues telescope ({threads} threads)"
        );
        assert_eq!(
            pc.total(|c| c.lanes),
            stats.sm.thread_instrs,
            "lanes telescope ({threads} threads)"
        );
        assert_eq!(
            pc.total(|c| c.offchip_txns),
            stats.sm.offchip_txns,
            "off-chip transactions telescope ({threads} threads)"
        );
        assert_eq!(
            pc.total(|c| c.l1_accesses),
            stats.l1.accesses(),
            "L1 accesses telescope ({threads} threads)"
        );
        assert_eq!(
            pc.total(|c| c.l1_hits),
            stats.l1.hits(),
            "L1 hits telescope ({threads} threads)"
        );
        for reason in StallReason::ALL {
            assert_eq!(
                pc.total(|c| c.stalls.get(reason)) + pc.unattributed.get(reason),
                stats.sm.stalls.get(reason),
                "stall {reason:?} telescopes ({threads} threads)"
            );
        }
    }
}

#[test]
fn per_pc_counters_sum_to_kernel_record_deltas() {
    let (stats, profile, _) = profiled_run(1);
    // Retire intervals partition the run, so summed per-kernel record
    // deltas equal the run totals — the same totals the per-PC table
    // telescopes to. This pins the two scoping mechanisms to each other.
    let record_issued: u64 = profile.kernels.iter().map(|k| k.stats.sm.issued).sum();
    assert_eq!(record_issued, stats.sm.issued, "records partition the run");
    let pc = profile.pc.as_ref().expect("attribution was on");
    assert_eq!(
        pc.total(|c| c.issues),
        record_issued,
        "per-PC issues equal summed per-kernel record deltas"
    );
    assert!(
        profile.kernels.iter().any(|k| k.is_cdp_child()),
        "the CDP workload must produce child records"
    );
}

#[test]
fn per_unit_counters_telescope_to_run_stats() {
    for threads in [1usize, 4] {
        let (stats, profile, _) = profiled_run(threads);
        let units = &profile.units;

        let issued: u64 = units.sms.iter().map(|u| u.stats.issued).sum();
        assert_eq!(issued, stats.sm.issued, "SM issues ({threads} threads)");
        let l1: u64 = units.sms.iter().map(|u| u.l1.accesses()).sum();
        assert_eq!(l1, stats.l1.accesses(), "L1 accesses ({threads} threads)");
        let l2: u64 = units.partitions.iter().map(|p| p.l2.accesses()).sum();
        assert_eq!(l2, stats.l2.accesses(), "L2 accesses ({threads} threads)");
        let dram: u64 = units.partitions.iter().map(|p| p.dram.requests).sum();
        assert_eq!(
            dram, stats.dram.requests,
            "DRAM requests ({threads} threads)"
        );
        let banks: u64 = units
            .partitions
            .iter()
            .flat_map(|p| p.banks.iter())
            .map(|&(req, _)| req)
            .sum();
        assert_eq!(
            banks, stats.dram.requests,
            "bank requests ({threads} threads)"
        );
        let row_hits: u64 = units
            .partitions
            .iter()
            .flat_map(|p| p.banks.iter())
            .map(|&(_, hits)| hits)
            .sum();
        assert_eq!(
            row_hits, stats.dram.row_hits,
            "bank row hits ({threads} threads)"
        );
        let req: u64 = units.sms.iter().map(|u| u.req_injected).sum();
        assert_eq!(
            req, stats.icnt_req.packets,
            "request packets ({threads} threads)"
        );
        let req_del: u64 = units.partitions.iter().map(|p| p.req_delivered).sum();
        assert_eq!(
            req_del, stats.icnt_req.packets,
            "request deliveries ({threads} threads)"
        );
        let rep: u64 = units.partitions.iter().map(|p| p.rep_injected).sum();
        assert_eq!(
            rep, stats.icnt_rep.packets,
            "reply packets ({threads} threads)"
        );
        let rep_del: u64 = units.sms.iter().map(|u| u.rep_delivered).sum();
        assert_eq!(
            rep_del, stats.icnt_rep.packets,
            "reply deliveries ({threads} threads)"
        );
    }
}

#[test]
fn attribution_is_bit_identical_across_thread_counts() {
    let (stats_1, profile_1, _) = profiled_run(1);
    let (stats_4, profile_4, _) = profiled_run(4);
    assert_eq!(stats_1, stats_4, "aggregate counters are thread-invariant");
    assert_eq!(
        profile_1.pc, profile_4.pc,
        "per-PC attribution is thread-invariant"
    );
    assert_eq!(
        profile_1.units, profile_4.units,
        "per-unit attribution is thread-invariant"
    );
    assert_eq!(
        profile_1.to_json(),
        profile_4.to_json(),
        "the serialized profile is bit-identical"
    );
}

#[test]
fn attribution_off_changes_nothing_and_costs_nothing() {
    let run = |attribution: bool| {
        let config = GpuConfig::rtx3070().with_attribution(attribution);
        let b = benchmark(Scale::Tiny, "GG").expect("GG is registered");
        b.run(&config, true)
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.stats, on.stats, "attribution must not perturb timing");
    assert!(
        off.profile.is_none(),
        "no profiling layers on, so no profile is collected"
    );
    assert!(on.profile.expect("attribution is on").pc.is_some());
}
