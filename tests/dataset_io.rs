//! The bundled mini-datasets parse correctly and flow through the
//! substrate (FASTA → MSA, FASTQ → mapper).

use ggpu_genomics::{
    center_star, parse_fasta, parse_fastq, Blosum62, DnaSeq, GapModel, Mapper, MapperParams,
};

#[test]
fn mini_proteins_parse_and_align() {
    let text = std::fs::read_to_string("data/mini_proteins.fasta").expect("dataset present");
    let recs = parse_fasta(&text).expect("valid FASTA");
    assert_eq!(recs.len(), 5);
    assert!(recs.iter().all(|r| r.seq.len() == 40));
    let family: Vec<Vec<u8>> = recs
        .iter()
        .filter(|r| r.id.starts_with("family1"))
        .map(|r| r.seq.clone())
        .collect();
    let msa = center_star(
        &family,
        &Blosum62,
        GapModel::Affine {
            open: 11,
            extend: 1,
        },
    );
    assert_eq!(msa.rows.len(), 3);
    assert!(msa.sp_score(&Blosum62, 5) > 0);
}

#[test]
fn mini_reads_parse_with_qualities() {
    let text = std::fs::read_to_string("data/mini_reads.fastq").expect("dataset present");
    let recs = parse_fastq(&text).expect("valid FASTQ");
    assert_eq!(recs.len(), 3);
    for r in &recs {
        assert_eq!(r.seq.len(), 20);
        assert_eq!(r.qual.len(), 20);
        assert!(r.phred().iter().all(|&q| q <= 60));
    }
    // The third read has a degraded tail ('5' = Q20 vs 'I' = Q40).
    assert!(recs[2].phred()[19] < recs[2].phred()[0]);
}

#[test]
fn mini_reads_map_onto_mini_genome() {
    let gtext = std::fs::read_to_string("data/mini_genome.fasta").expect("dataset present");
    let genome_rec = &parse_fasta(&gtext).expect("valid FASTA")[0];
    let genome: DnaSeq = std::str::from_utf8(&genome_rec.seq)
        .expect("ascii")
        .parse()
        .expect("ACGT only");
    assert_eq!(genome.len(), 120);

    let rtext = std::fs::read_to_string("data/mini_reads.fastq").expect("dataset present");
    let reads = parse_fastq(&rtext).expect("valid FASTQ");
    let mapper = Mapper::new(
        genome,
        MapperParams {
            seed_len: 12,
            ..MapperParams::default()
        },
    );
    let mut mapped = 0;
    for r in &reads {
        let seq: DnaSeq = std::str::from_utf8(&r.seq)
            .expect("ascii")
            .parse()
            .expect("ACGT");
        if let Some(hit) = mapper.map(&seq) {
            mapped += 1;
            assert!(hit.alignment.score > 0);
        }
    }
    assert_eq!(mapped, 3, "all bundled reads come from the bundled genome");
}
