//! Device fault-model tests: guest-fault traps with context, sticky-fault
//! semantics and recovery, the forward-progress watchdog, and the
//! deterministic fault-injection plan.

use ggpu_isa::{
    CmpOp, FaultKind, KernelBuilder, KernelId, LaunchDims, Operand, Program, Space, Width,
};
use ggpu_sim::{
    CopyDir, FaultPlan, Gpu, GpuConfig, LaunchOptions, LaunchProblem, SimError, StreamId, WarpWait,
};

/// Kernel: store one u64 at `param[0] + offset` from a single thread.
fn store_at(offset: i64) -> Program {
    let mut b = KernelBuilder::new("poke");
    let out = b.reg();
    b.ld_param(out, 0);
    b.st(Space::Global, Width::B64, Operand::imm(7), out, offset);
    b.exit();
    let mut p = Program::new();
    p.add(b.finish());
    p
}

/// Kernel: out[tid] = tid (a well-behaved workload for recovery checks).
fn write_tids() -> Program {
    let mut b = KernelBuilder::new("write_tids");
    let tid = b.global_tid();
    let out = b.reg();
    b.ld_param(out, 0);
    let oa = b.reg();
    b.imul(oa, tid, Operand::imm(8));
    b.iadd(oa, oa, Operand::reg(out));
    b.st(Space::Global, Width::B64, Operand::reg(tid), oa, 0);
    b.exit();
    let mut p = Program::new();
    p.add(b.finish());
    p
}

#[test]
fn oob_store_traps_with_context_and_is_sticky() {
    // One thread stores 1 MiB past its 256-byte allocation.
    let mut gpu = Gpu::new(store_at(1 << 20), GpuConfig::test_small());
    let buf = gpu.malloc(256);
    let err = gpu
        .try_run_kernel(KernelId(0), LaunchDims::linear(1, 1), &[buf.0])
        .expect_err("out-of-bounds store must fault");
    let fault = match &err {
        SimError::DeviceFault(f) => f,
        other => panic!("expected DeviceFault, got {other}"),
    };
    assert_eq!(fault.kind, FaultKind::IllegalAddress);
    assert_eq!(fault.kernel, "poke");
    assert_eq!(fault.addr, Some(buf.0 + (1 << 20)));
    assert!(fault.pc.is_some(), "fault must carry the faulting PC");
    assert!(fault.lane_mask.is_some(), "fault must carry the lane mask");
    assert!(!fault.instr.is_empty(), "fault must carry the instruction");
    let msg = err.to_string();
    assert!(msg.contains("illegal address"), "{msg}");
    assert!(msg.contains("poke"), "{msg}");

    // Sticky: every device-touching call returns the same error until reset.
    assert_eq!(gpu.try_synchronize().unwrap_err(), err);
    assert_eq!(gpu.try_malloc(8).unwrap_err(), err);
    assert_eq!(gpu.try_memcpy_h2d(buf, &[0u8; 8]).unwrap_err(), err);
    assert_eq!(
        gpu.try_launch(KernelId(0), LaunchDims::linear(1, 1), &[buf.0])
            .unwrap_err(),
        err
    );
    assert_eq!(gpu.fault(), Some(&err));
}

#[test]
fn misaligned_access_traps() {
    // The store lands at buf+1, which is not naturally aligned for B64.
    let mut gpu = Gpu::new(store_at(1), GpuConfig::test_small());
    let buf = gpu.malloc(256);
    let err = gpu
        .try_run_kernel(KernelId(0), LaunchDims::linear(1, 1), &[buf.0])
        .expect_err("misaligned store must fault");
    match err {
        SimError::DeviceFault(f) => {
            assert_eq!(f.kind, FaultKind::MisalignedAccess);
            assert_eq!(f.addr, Some(buf.0 + 1));
        }
        other => panic!("expected DeviceFault, got {other}"),
    }
}

#[test]
fn device_recovers_after_reset_fault() {
    let mut program = store_at(1 << 20);
    let good = program.add({
        let mut b = KernelBuilder::new("write_tids");
        let tid = b.global_tid();
        let out = b.reg();
        b.ld_param(out, 0);
        let oa = b.reg();
        b.imul(oa, tid, Operand::imm(8));
        b.iadd(oa, oa, Operand::reg(out));
        b.st(Space::Global, Width::B64, Operand::reg(tid), oa, 0);
        b.exit();
        b.finish()
    });
    let mut gpu = Gpu::new(program, GpuConfig::test_small());
    let buf = gpu.malloc(64 * 8);
    gpu.try_run_kernel(KernelId(0), LaunchDims::linear(1, 1), &[buf.0])
        .expect_err("first kernel faults");

    let taken = gpu.reset_fault().expect("fault state was set");
    assert!(matches!(taken, SimError::DeviceFault(_)));
    assert!(gpu.fault().is_none());
    assert!(!gpu.busy(), "halted device must be idle after reset");

    // The same Gpu instance runs a well-behaved kernel to completion.
    let cycles = gpu
        .try_run_kernel(good, LaunchDims::linear(2, 32), &[buf.0])
        .expect("device usable after reset_fault");
    assert!(cycles > 0);
    for i in 0..64u64 {
        assert_eq!(gpu.memory().read_u64(buf.offset(i * 8)), i);
    }
}

#[test]
fn dropped_reply_trips_watchdog_with_blocked_warp_report() {
    // Inject loss of the first memory reply: the loading warp waits forever
    // and the forward-progress watchdog must convert the hang into a typed
    // deadlock report instead of spinning to the 2e9-cycle backstop.
    let mut b = KernelBuilder::new("loader");
    let src = b.reg();
    b.ld_param(src, 0);
    let v = b.reg();
    b.ld(Space::Global, Width::B64, v, src, 0);
    b.st(Space::Global, Width::B64, Operand::reg(v), src, 8);
    b.exit();
    let mut p = Program::new();
    let kid = p.add(b.finish());

    let mut config = GpuConfig::test_small();
    config.watchdog_cycles = 2_000;
    config.fault_plan = FaultPlan {
        drop_reply: Some(0),
        ..FaultPlan::default()
    };
    let mut gpu = Gpu::new(p, config);
    let buf = gpu.malloc(256);
    let err = gpu
        .try_run_kernel(kid, LaunchDims::linear(1, 1), &[buf.0])
        .expect_err("lost reply must deadlock");
    let report = match &err {
        SimError::Deadlock(r) => r,
        other => panic!("expected Deadlock, got {other}"),
    };
    assert!(report.stalled_for >= 2_000);
    assert!(
        report.outstanding_requests >= 1,
        "the dropped reply's request is still outstanding: {report:?}"
    );
    assert!(
        report
            .warps
            .iter()
            .any(|w| matches!(w.wait, WarpWait::Memory { .. })),
        "report must show the warp blocked on memory: {report:?}"
    );
    assert!(err.to_string().contains("no forward progress"), "{err}");

    // Deadlock is sticky like a guest fault, and clears the same way.
    assert!(gpu.try_synchronize().is_err());
    gpu.reset_fault().expect("deadlock was sticky");
    assert!(!gpu.busy());
}

#[test]
fn poison_injection_faults_access_inside_live_allocation() {
    // Poison a 64-byte window that the first allocation will cover; the
    // kernel's store into it faults even though the address was malloc'd.
    let mut config = GpuConfig::test_small();
    config.fault_plan.poison = Some((4096 + 64, 4096 + 128));
    let mut gpu = Gpu::new(store_at(64), config);
    let buf = gpu.malloc(256);
    assert_eq!(buf.0, 4096, "first allocation starts at the base address");
    let err = gpu
        .try_run_kernel(KernelId(0), LaunchDims::linear(1, 1), &[buf.0])
        .expect_err("store into poisoned range must fault");
    match err {
        SimError::DeviceFault(f) => {
            assert_eq!(f.kind, FaultKind::IllegalAddress);
            assert_eq!(f.addr, Some(buf.0 + 64));
        }
        other => panic!("expected DeviceFault, got {other}"),
    }
}

#[test]
fn oom_is_reported_and_not_sticky() {
    let mut config = GpuConfig::test_small();
    config.memory_limit = 4096;
    let mut gpu = Gpu::new(write_tids(), config);
    let err = gpu.try_malloc(8192).expect_err("over-limit malloc fails");
    match err {
        SimError::OutOfMemory {
            requested,
            in_use,
            limit,
        } => {
            assert_eq!(requested, 8192);
            assert_eq!(in_use, 0);
            assert_eq!(limit, 4096);
        }
        other => panic!("expected OutOfMemory, got {other}"),
    }
    // As in CUDA, allocation failure does not poison the device.
    assert!(gpu.fault().is_none());
    let buf = gpu.try_malloc(1024).expect("smaller allocation still fits");
    gpu.try_run_kernel(KernelId(0), LaunchDims::linear(1, 32), &[buf.0])
        .expect("device fully usable after an OOM");
}

#[test]
fn invalid_launch_configs_are_rejected_before_enqueue() {
    let mut gpu = Gpu::new(write_tids(), GpuConfig::test_small());
    let buf = gpu.malloc(1024);

    let unknown = gpu
        .try_launch(KernelId(9), LaunchDims::linear(1, 32), &[buf.0])
        .unwrap_err();
    assert!(matches!(
        unknown,
        SimError::InvalidLaunch {
            problem: LaunchProblem::UnknownKernel,
            ..
        }
    ));

    let zero = gpu
        .try_launch(KernelId(0), LaunchDims::linear(0, 32), &[buf.0])
        .unwrap_err();
    assert!(matches!(
        zero,
        SimError::InvalidLaunch {
            problem: LaunchProblem::ZeroDimension,
            ..
        }
    ));

    let wide = gpu
        .try_launch(KernelId(0), LaunchDims::linear(1, 4096), &[buf.0])
        .unwrap_err();
    assert!(matches!(
        wide,
        SimError::InvalidLaunch {
            problem: LaunchProblem::TooManyThreads { limit: 1536, .. },
            ..
        }
    ));

    let missing = gpu
        .try_launch(KernelId(0), LaunchDims::linear(1, 32), &[])
        .unwrap_err();
    assert!(matches!(
        missing,
        SimError::InvalidLaunch {
            problem: LaunchProblem::ParamCountMismatch { provided: 0, .. },
            ..
        }
    ));

    // Rejected launches enqueue nothing and leave the device healthy.
    assert!(gpu.fault().is_none());
    assert!(!gpu.busy());
    gpu.try_run_kernel(KernelId(0), LaunchDims::linear(1, 32), &[buf.0])
        .expect("valid launch still works");
}

#[test]
fn cdp_queue_overflow_injection_faults_parent_launch() {
    // Parent thread 0 launches a child; the plan reports the pending-launch
    // queue as full from cycle 0, so the device launch must trap.
    let mut p = Program::new();
    let mut pb = KernelBuilder::new("parent");
    let tid = pb.global_tid();
    let z = pb.cmp_s(CmpOp::Eq, Operand::reg(tid), Operand::imm(0));
    pb.if_then(z, |b| {
        let out = b.reg();
        b.ld_param(out, 0);
        b.launch(1, Operand::imm(1), Operand::imm(32), Operand::reg(out), 1);
        b.dsync();
    });
    pb.exit();
    p.add(pb.finish());
    let mut cb = KernelBuilder::new("child");
    let out = cb.reg();
    cb.ld_param(out, 0);
    cb.st(Space::Global, Width::B64, Operand::imm(1), out, 0);
    cb.exit();
    p.add(cb.finish());

    let mut config = GpuConfig::test_small();
    config.fault_plan.cdp_full_at = Some(0);
    let mut gpu = Gpu::new(p, config);
    let buf = gpu.malloc(64);
    let err = gpu
        .try_run_kernel(KernelId(0), LaunchDims::linear(1, 32), &[buf.0])
        .expect_err("forced-full CDP queue must fault the launch");
    match err {
        SimError::DeviceFault(f) => {
            assert_eq!(f.kind, FaultKind::CdpQueueOverflow);
            assert_eq!(f.kernel, "parent");
            assert!(f.instr.contains("launch"), "{}", f.instr);
        }
        other => panic!("expected DeviceFault, got {other}"),
    }
}

#[test]
fn memcpy_drop_injection_is_typed_and_not_sticky() {
    let mut config = GpuConfig::test_small();
    config.fault_plan.drop_memcpy = Some(0);
    let mut gpu = Gpu::new(write_tids(), config);
    let buf = gpu.malloc(256);
    let err = gpu
        .try_memcpy_h2d(buf, &[1u8; 16])
        .expect_err("transfer #0 must be dropped");
    match err {
        SimError::MemcpyDropped { index: 0, dir } => assert_eq!(dir, CopyDir::H2D),
        other => panic!("expected MemcpyDropped, got {other}"),
    }
    // No payload moved, the device is not poisoned, and the retry (a new
    // transfer index) goes through.
    assert!(gpu.fault().is_none());
    gpu.try_memcpy_h2d(buf, &[1u8; 16]).expect("retry succeeds");
    let back = gpu.try_memcpy_d2h(buf, 16).expect("readback succeeds");
    assert_eq!(back, vec![1u8; 16]);
}

#[test]
fn memcpy_poison_injection_corrupts_exactly_one_transfer() {
    // H2D: transfer #0 corrupts what lands in device memory.
    let mut config = GpuConfig::test_small();
    config.fault_plan.poison_memcpy = Some(0);
    let mut gpu = Gpu::new(write_tids(), config);
    let buf = gpu.malloc(256);
    let data = [0x11u8; 16];
    gpu.try_memcpy_h2d(buf, &data)
        .expect("poisoned copy still succeeds");
    let back = gpu.try_memcpy_d2h(buf, 16).expect("clean readback");
    assert_eq!(
        back,
        vec![0x11 ^ 0xA5; 16],
        "device image must be corrupted"
    );

    // D2H: device memory stays intact, only the returned bytes flip.
    let mut config = GpuConfig::test_small();
    config.fault_plan.poison_memcpy = Some(1);
    let mut gpu = Gpu::new(write_tids(), config);
    let buf = gpu.malloc(256);
    gpu.try_memcpy_h2d(buf, &data).expect("clean upload");
    let poisoned = gpu
        .try_memcpy_d2h(buf, 16)
        .expect("poisoned readback succeeds");
    assert_eq!(poisoned, vec![0x11 ^ 0xA5; 16]);
    let clean = gpu.try_memcpy_d2h(buf, 16).expect("next readback is clean");
    assert_eq!(clean, vec![0x11; 16], "device memory must be unharmed");
}

#[test]
fn unknown_stream_launch_is_rejected() {
    let mut gpu = Gpu::new(write_tids(), GpuConfig::test_small());
    let buf = gpu.malloc(1024);
    let err = gpu
        .try_launch_on(
            KernelId(0),
            LaunchDims::linear(1, 32),
            &[buf.0],
            LaunchOptions {
                stream: StreamId(5),
                deadline: None,
            },
        )
        .unwrap_err();
    match err {
        SimError::InvalidLaunch {
            problem: LaunchProblem::UnknownStream { requested, streams },
            ..
        } => {
            assert_eq!(requested, 5);
            assert_eq!(streams, 1);
        }
        other => panic!("expected UnknownStream, got {other}"),
    }
}

#[test]
fn stream_fault_isolates_and_reset_stream_recovers() {
    // Stream 1 runs an out-of-bounds store; stream 2 runs a well-behaved
    // kernel. The fault must poison only stream 1.
    let mut program = store_at(1 << 20);
    let good = program.add({
        let mut b = KernelBuilder::new("write_tids");
        let tid = b.global_tid();
        let out = b.reg();
        b.ld_param(out, 0);
        let oa = b.reg();
        b.imul(oa, tid, Operand::imm(8));
        b.iadd(oa, oa, Operand::reg(out));
        b.st(Space::Global, Width::B64, Operand::reg(tid), oa, 0);
        b.exit();
        b.finish()
    });
    let config = GpuConfig::test_small().with_stream_isolation(true);
    let mut gpu = Gpu::new(program, config);
    let bad_buf = gpu.malloc(256);
    let good_buf = gpu.malloc(64 * 8);
    let s1 = gpu.create_stream();
    let s2 = gpu.create_stream();
    let on = |s| LaunchOptions {
        stream: s,
        deadline: None,
    };
    gpu.try_launch_on(KernelId(0), LaunchDims::linear(1, 1), &[bad_buf.0], on(s1))
        .expect("launch on stream 1");
    gpu.try_launch_on(good, LaunchDims::linear(2, 32), &[good_buf.0], on(s2))
        .expect("launch on stream 2");

    // The faulted stream must not fail the device-wide synchronize.
    gpu.try_synchronize()
        .expect("non-default stream fault must not poison the device");
    assert!(gpu.fault().is_none(), "device-wide fault must stay clear");
    let err = gpu.stream_fault(s1).cloned().expect("stream 1 is faulted");
    match &err {
        SimError::DeviceFault(f) => {
            assert_eq!(f.stream, 1);
            assert_eq!(f.kind, FaultKind::IllegalAddress);
        }
        other => panic!("expected DeviceFault on stream 1, got {other}"),
    }
    assert!(err.to_string().contains("stream 1"), "{err}");
    assert!(gpu.stream_fault(s2).is_none());
    // Stream 2's results are intact.
    for i in 0..64u64 {
        assert_eq!(gpu.memory().read_u64(good_buf.offset(i * 8)), i);
    }
    // New launches on the poisoned stream are refused with the same error
    // until it is reset...
    assert_eq!(
        gpu.try_launch_on(good, LaunchDims::linear(1, 32), &[good_buf.0], on(s1))
            .unwrap_err(),
        err
    );
    // ...after which the very same stream is usable again.
    assert_eq!(gpu.reset_stream(s1), Some(err));
    assert!(gpu.stream_fault(s1).is_none());
    gpu.try_launch_on(good, LaunchDims::linear(2, 32), &[good_buf.0], on(s1))
        .expect("reset stream accepts launches");
    gpu.try_synchronize().expect("recovered stream runs clean");
}

#[test]
fn watchdog_kills_only_the_hung_stream() {
    // Stream 1 hangs on a dropped memory reply; stream 2 has a healthy
    // grid queued behind it. The watchdog must kill stream 1 and let the
    // synchronize continue until stream 2 completes.
    let mut p = Program::new();
    let loader = p.add({
        let mut b = KernelBuilder::new("loader");
        let src = b.reg();
        b.ld_param(src, 0);
        let v = b.reg();
        b.ld(Space::Global, Width::B64, v, src, 0);
        b.st(Space::Global, Width::B64, Operand::reg(v), src, 8);
        b.exit();
        b.finish()
    });
    let good = p.add({
        let mut b = KernelBuilder::new("write_tids");
        let tid = b.global_tid();
        let out = b.reg();
        b.ld_param(out, 0);
        let oa = b.reg();
        b.imul(oa, tid, Operand::imm(8));
        b.iadd(oa, oa, Operand::reg(out));
        b.st(Space::Global, Width::B64, Operand::reg(tid), oa, 0);
        b.exit();
        b.finish()
    });
    let mut config = GpuConfig::test_small().with_stream_isolation(true);
    config.watchdog_cycles = 2_000;
    config.fault_plan.drop_reply = Some(0);
    let mut gpu = Gpu::new(p, config);
    let hang_buf = gpu.malloc(256);
    let good_buf = gpu.malloc(64 * 8);
    let s1 = gpu.create_stream();
    let s2 = gpu.create_stream();
    gpu.try_launch_on(
        loader,
        LaunchDims::linear(1, 1),
        &[hang_buf.0],
        LaunchOptions {
            stream: s1,
            deadline: None,
        },
    )
    .expect("launch hang");
    gpu.try_launch_on(
        good,
        LaunchDims::linear(2, 32),
        &[good_buf.0],
        LaunchOptions {
            stream: s2,
            deadline: None,
        },
    )
    .expect("launch good");

    gpu.try_synchronize()
        .expect("watchdog on a non-default stream must not fail the sync");
    let err = gpu.stream_fault(s1).expect("hung stream is faulted");
    match err {
        SimError::Deadlock(report) => {
            assert_eq!(report.stream, 1);
            assert!(report.stalled_for >= 2_000);
        }
        other => panic!("expected Deadlock on stream 1, got {other}"),
    }
    assert!(gpu.fault().is_none());
    assert!(gpu.stream_fault(s2).is_none());
    for i in 0..64u64 {
        assert_eq!(gpu.memory().read_u64(good_buf.offset(i * 8)), i);
    }
}

#[test]
fn deadline_budget_kills_grid_with_typed_error() {
    // A 10-cycle budget on a grid that needs hundreds of cycles: the
    // deadline must fire, kill the owning stream, and spare the rest.
    let mut gpu = Gpu::new(
        write_tids(),
        GpuConfig::test_small().with_stream_isolation(true),
    );
    let buf = gpu.malloc(64 * 8);
    let s1 = gpu.create_stream();
    gpu.try_launch_on(
        KernelId(0),
        LaunchDims::linear(2, 32),
        &[buf.0],
        LaunchOptions {
            stream: s1,
            deadline: Some(10),
        },
    )
    .expect("launch with budget");
    gpu.try_synchronize()
        .expect("budget overrun on stream 1 must not fail the sync");
    match gpu.stream_fault(s1) {
        Some(SimError::DeadlineExceeded { stream, budget, .. }) => {
            assert_eq!(*stream, 1);
            assert_eq!(*budget, 10);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(gpu.fault().is_none());

    // On the default stream the same overrun keeps CUDA's device-wide
    // sticky semantics.
    let mut gpu = Gpu::new(write_tids(), GpuConfig::test_small());
    let buf = gpu.malloc(64 * 8);
    gpu.try_launch_on(
        KernelId(0),
        LaunchDims::linear(2, 32),
        &[buf.0],
        LaunchOptions {
            stream: StreamId::DEFAULT,
            deadline: Some(10),
        },
    )
    .expect("launch with budget");
    let err = gpu
        .try_synchronize()
        .expect_err("default-stream deadline is device-sticky");
    assert!(matches!(err, SimError::DeadlineExceeded { stream: 0, .. }));
    assert!(err.to_string().contains("cycle budget"), "{err}");
    gpu.reset_fault()
        .expect("sticky deadline clears like a fault");
    gpu.try_run_kernel(KernelId(0), LaunchDims::linear(2, 32), &[buf.0])
        .expect("device usable after reset");
}

#[test]
fn reset_fault_rescopes_kernel_records() {
    // Regression: recovery must re-base the per-kernel record counters.
    // Before the fix, the first grid retired after a fault absorbed the
    // killed span's SM cycles into its own record delta.
    let mut p = Program::new();
    let loader = p.add({
        let mut b = KernelBuilder::new("loader");
        let src = b.reg();
        b.ld_param(src, 0);
        let v = b.reg();
        b.ld(Space::Global, Width::B64, v, src, 0);
        b.st(Space::Global, Width::B64, Operand::reg(v), src, 8);
        b.exit();
        b.finish()
    });
    let good = p.add({
        let mut b = KernelBuilder::new("write_tids");
        let tid = b.global_tid();
        let out = b.reg();
        b.ld_param(out, 0);
        let oa = b.reg();
        b.imul(oa, tid, Operand::imm(8));
        b.iadd(oa, oa, Operand::reg(out));
        b.st(Space::Global, Width::B64, Operand::reg(tid), oa, 0);
        b.exit();
        b.finish()
    });
    let mut config = GpuConfig::test_small().with_kernel_records(true);
    config.watchdog_cycles = 2_000;
    config.fault_plan.drop_reply = Some(0);
    let mut gpu = Gpu::new(p, config);
    let buf = gpu.malloc(64 * 8);
    gpu.try_run_kernel(loader, LaunchDims::linear(1, 1), &[buf.0])
        .expect_err("hang trips the watchdog");
    gpu.reset_fault().expect("deadlock was sticky");
    gpu.try_run_kernel(good, LaunchDims::linear(2, 32), &[buf.0])
        .expect("device recovers");
    // The killed grid never retired, so exactly one record exists — and
    // its delta must cover only the post-recovery span, not the >= 2000
    // cycles the hang burned across every SM.
    let records = gpu.kernel_records();
    assert_eq!(records.len(), 1, "{records:?}");
    assert_eq!(records[0].kernel, "write_tids");
    assert_eq!(records[0].stream, 0);
    assert!(
        records[0].stats.sm.cycles < 2_000,
        "record absorbed the killed span: {} SM-cycles",
        records[0].stats.sm.cycles
    );
}
