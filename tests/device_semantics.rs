//! Device-semantics tests: constant-memory binding, CDP inheritance,
//! multi-kernel programs, and host-API edge cases.

use ggpu_isa::{CmpOp, KernelBuilder, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::{Gpu, GpuConfig};

/// Kernel: out[tid] = const[tid*8] (reads one u64 per thread).
fn const_reader() -> Program {
    let mut b = KernelBuilder::new("const_reader");
    b.set_cmem_bytes(256);
    let tid = b.global_tid();
    let ca = b.reg();
    b.imul(ca, tid, Operand::imm(8));
    let v = b.reg();
    b.ld(Space::Const, Width::B64, v, ca, 0);
    let out = b.reg();
    b.ld_param(out, 0);
    let oa = b.reg();
    b.imul(oa, tid, Operand::imm(8));
    b.iadd(oa, oa, Operand::reg(out));
    b.st(Space::Global, Width::B64, Operand::reg(v), oa, 0);
    b.exit();
    let mut p = Program::new();
    p.add(b.finish());
    p
}

#[test]
fn constant_memory_binding_is_visible_to_kernels() {
    let p = const_reader();
    let mut gpu = Gpu::new(p, GpuConfig::test_small());
    let data: Vec<u8> = (0..16u64).flat_map(|i| (i * 11).to_le_bytes()).collect();
    gpu.bind_constants(ggpu_isa::KernelId(0), data);
    let out = gpu.malloc(16 * 8);
    gpu.run_kernel(ggpu_isa::KernelId(0), LaunchDims::linear(1, 16), &[out.0]);
    for i in 0..16u64 {
        assert_eq!(gpu.memory().read_u64(out.offset(i * 8)), i * 11);
    }
}

#[test]
fn unbound_constants_read_zero() {
    let p = const_reader();
    let mut gpu = Gpu::new(p, GpuConfig::test_small());
    let out = gpu.malloc(16 * 8);
    gpu.run_kernel(ggpu_isa::KernelId(0), LaunchDims::linear(1, 16), &[out.0]);
    for i in 0..16u64 {
        assert_eq!(gpu.memory().read_u64(out.offset(i * 8)), 0);
    }
}

#[test]
fn cdp_children_inherit_their_kernels_constants() {
    // Parent (kernel 0) launches child (kernel 1); the child reads its own
    // const binding.
    let mut p = Program::new();
    let mut pb = KernelBuilder::new("parent");
    let tid = pb.global_tid();
    let z = pb.cmp_s(CmpOp::Eq, Operand::reg(tid), Operand::imm(0));
    pb.if_then(z, |b| {
        let pblock = b.reg();
        b.ld_param(pblock, 1);
        let out = b.reg();
        b.ld_param(out, 0);
        b.st(Space::Global, Width::B64, Operand::reg(out), pblock, 0);
        b.launch(
            1,
            Operand::imm(1),
            Operand::imm(16),
            Operand::reg(pblock),
            1,
        );
        b.dsync();
    });
    pb.exit();
    p.add(pb.finish());

    let mut cb = KernelBuilder::new("child");
    cb.set_cmem_bytes(256);
    let ctid = cb.global_tid();
    let ca = cb.reg();
    cb.imul(ca, ctid, Operand::imm(8));
    let v = cb.reg();
    cb.ld(Space::Const, Width::B64, v, ca, 0);
    let out = cb.reg();
    cb.ld_param(out, 0);
    let oa = cb.reg();
    cb.imul(oa, ctid, Operand::imm(8));
    cb.iadd(oa, oa, Operand::reg(out));
    cb.st(Space::Global, Width::B64, Operand::reg(v), oa, 0);
    cb.exit();
    p.add(cb.finish());

    let mut gpu = Gpu::new(p, GpuConfig::test_small());
    let data: Vec<u8> = (0..16u64).flat_map(|i| (1000 + i).to_le_bytes()).collect();
    gpu.bind_constants(ggpu_isa::KernelId(1), data);
    let out = gpu.malloc(16 * 8);
    let pblock = gpu.malloc(8);
    gpu.run_kernel(
        ggpu_isa::KernelId(0),
        LaunchDims::linear(1, 32),
        &[out.0, pblock.0],
    );
    for i in 0..16u64 {
        assert_eq!(
            gpu.memory().read_u64(out.offset(i * 8)),
            1000 + i,
            "child const at {i}"
        );
    }
}

#[test]
fn many_small_grids_complete_in_order() {
    // out[k] = k written by grid k; later grids read earlier grids' output
    // (default-stream serialization).
    let mut b = KernelBuilder::new("chain");
    let out = b.reg();
    b.ld_param(out, 0);
    let k = b.reg();
    b.ld_param(k, 1);
    // out[k] = (k == 0) ? 1 : out[k-1] + 1; the k > 0 load is branched
    // around so grid 0 never touches out[-1] (which would trap).
    let pa = b.reg();
    b.imul(pa, k, Operand::imm(8));
    b.iadd(pa, pa, Operand::reg(out));
    let v = b.reg();
    b.mov(v, Operand::imm(1));
    let nz = b.cmp_s(CmpOp::Ne, Operand::reg(k), Operand::imm(0));
    b.if_then(nz, |b| {
        let prev = b.reg();
        b.ld(Space::Global, Width::B64, prev, pa, -8);
        b.iadd(v, prev, Operand::imm(1));
    });
    b.st(Space::Global, Width::B64, Operand::reg(v), pa, 0);
    b.exit();
    let mut p = Program::new();
    let kid = p.add(b.finish());
    let mut gpu = Gpu::new(p, GpuConfig::test_small());
    let out = gpu.malloc(32 * 8);
    for k in 0..32u64 {
        gpu.launch(kid, LaunchDims::linear(1, 1), &[out.0, k]);
    }
    gpu.synchronize();
    for k in 0..32u64 {
        assert_eq!(gpu.memory().read_u64(out.offset(k * 8)), k + 1);
    }
    assert_eq!(gpu.stats().host.kernel_launches, 32);
}

#[test]
fn memcpy_between_launches_is_coherent() {
    // Host overwrites device data between serialized grids.
    let mut b = KernelBuilder::new("copy");
    let src = b.reg();
    b.ld_param(src, 0);
    let dst = b.reg();
    b.ld_param(dst, 1);
    let v = b.reg();
    b.ld(Space::Global, Width::B64, v, src, 0);
    b.st(Space::Global, Width::B64, Operand::reg(v), dst, 0);
    b.exit();
    let mut p = Program::new();
    let kid = p.add(b.finish());
    let mut gpu = Gpu::new(p, GpuConfig::test_small());
    let a = gpu.malloc(8);
    let r1 = gpu.malloc(8);
    let r2 = gpu.malloc(8);
    gpu.memcpy_h2d(a, &7u64.to_le_bytes());
    gpu.run_kernel(kid, LaunchDims::linear(1, 1), &[a.0, r1.0]);
    gpu.memcpy_h2d(a, &9u64.to_le_bytes());
    gpu.run_kernel(kid, LaunchDims::linear(1, 1), &[a.0, r2.0]);
    assert_eq!(gpu.memory().read_u64(r1), 7);
    assert_eq!(gpu.memory().read_u64(r2), 9);
}

#[test]
fn synchronize_with_no_work_is_free() {
    let p = const_reader();
    let mut gpu = Gpu::new(p, GpuConfig::test_small());
    assert_eq!(gpu.synchronize(), 0);
    assert!(!gpu.busy());
}

#[test]
fn local_memory_arenas_are_recycled_across_launches() {
    // Each grid of a local-memory kernel needs a per-warp arena. The
    // device keeps retired grids' arenas on a free list keyed by size, so
    // steady-state relaunching — same shape or an alternation of shapes —
    // reuses them instead of growing the heap.
    let mut p = Program::new();
    let mut kids = Vec::new();
    for (name, local_bytes) in [("small", 64u32), ("large", 256u32)] {
        let mut b = KernelBuilder::new(name);
        b.set_local_bytes(local_bytes);
        let tid = b.global_tid();
        let v = b.reg();
        b.imul(v, tid, Operand::imm(2));
        // Local space is per-thread: slot 0 is private to each lane.
        let zero = b.reg();
        b.imul(zero, tid, Operand::imm(0));
        b.st(Space::Local, Width::B64, Operand::reg(v), zero, 0);
        let out = b.reg();
        b.ld_param(out, 0);
        let back = b.reg();
        b.ld(Space::Local, Width::B64, back, zero, 0);
        let addr = b.reg();
        b.imul(addr, tid, Operand::imm(8));
        b.iadd(addr, addr, Operand::reg(out));
        b.st(Space::Global, Width::B64, Operand::reg(back), addr, 0);
        b.exit();
        kids.push(p.add(b.finish()));
    }
    let mut gpu = Gpu::new(p, GpuConfig::test_small());
    let out = gpu.malloc(64 * 8);
    // Warm up both shapes so each arena size exists on the free list.
    for &k in &kids {
        gpu.run_kernel(k, LaunchDims::linear(2, 32), &[out.0]);
    }
    let warm = gpu.memory().alloc_count();
    for round in 0..6 {
        let k = kids[round % 2];
        gpu.run_kernel(k, LaunchDims::linear(2, 32), &[out.0]);
        assert_eq!(
            gpu.memory().alloc_count(),
            warm,
            "arena allocation grew in round {round}"
        );
    }
    // Results stay correct through arena reuse (arenas are zeroed).
    for (i, chunk) in gpu.memcpy_d2h(out, 64 * 8).chunks_exact(8).enumerate() {
        assert_eq!(u64::from_le_bytes(chunk.try_into().unwrap()), i as u64 * 2);
    }
}
