//! Property test across the whole stack: random pairwise workloads are run
//! through the simulated-GPU DP kernel in every mode and must match the
//! CPU reference algorithms exactly.

use ggpu_isa::{LaunchDims, Program};
use ggpu_kernels::dp::{build_dp_kernel, scoring_const_data, DpKernelCfg, DpMode};
use ggpu_sim::{Gpu, GpuConfig};
use proptest::prelude::*;

use ggpu_genomics::{ksw_extend, nw_score, semiglobal_score, sw_score, GapModel, Simple};

const SUB: Simple = Simple {
    matches: 2,
    mismatch: -3,
};
const GAPS: GapModel = GapModel::Affine { open: 5, extend: 2 };
const MAX_LEN: u32 = 16;

/// Run `n_pairs` random pairs through the DP kernel under `mode`.
fn gpu_scores(mode: DpMode, rows_in_smem: bool, q: &[u8], t: &[u8], lens: &[u32]) -> Vec<i64> {
    let n = lens.len();
    let cfg = DpKernelCfg {
        mode,
        max_len: MAX_LEN,
        rows_in_smem,
        threads_per_cta: 32,
        matches: SUB.matches,
        mismatch: SUB.mismatch,
        open: 5,
        extend: 2,
        shared_target: false,
        subst_matrix: None,
    };
    let mut program = Program::new();
    let k = program.add(build_dp_kernel("fuzz", &cfg));
    let mut config = GpuConfig::test_small();
    config.n_sms = 2;
    let mut gpu = Gpu::new(program, config);
    gpu.bind_constants(k, scoring_const_data(&cfg));
    let qb = gpu.malloc(q.len() as u64);
    let tb = gpu.malloc(t.len() as u64);
    let lb = gpu.malloc(n as u64 * 4);
    let ob = gpu.malloc(n as u64 * 8);
    gpu.memcpy_h2d(qb, q);
    gpu.memcpy_h2d(tb, t);
    let len_bytes: Vec<u8> = lens.iter().flat_map(|l| l.to_le_bytes()).collect();
    gpu.memcpy_h2d(lb, &len_bytes);
    let dims = LaunchDims::linear(1, 32);
    gpu.run_kernel(k, dims, &[qb.0, tb.0, ob.0, n as u64, 0, 32, lb.0, 0, 0]);
    gpu.memcpy_d2h(ob, n * 8)
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8B")))
        .collect()
}

fn cpu_score(mode: DpMode, q: &[u8], t: &[u8]) -> i64 {
    (match mode {
        DpMode::Global => nw_score(q, t, &SUB, GAPS),
        DpMode::Local => sw_score(q, t, &SUB, GAPS),
        DpMode::SemiGlobal => semiglobal_score(q, t, &SUB, GAPS),
        DpMode::Extend { zdrop } => ksw_extend(q, t, &SUB, GAPS, usize::MAX, zdrop).score,
    }) as i64
}

fn workload() -> impl Strategy<Value = (Vec<u8>, Vec<u8>, Vec<u32>)> {
    prop::collection::vec(
        (
            1u32..=MAX_LEN,
            prop::collection::vec(0u8..4, 2 * MAX_LEN as usize),
        ),
        1..6,
    )
    .prop_map(|pairs| {
        let n = pairs.len();
        let mut q = vec![0u8; n * MAX_LEN as usize];
        let mut t = vec![0u8; n * MAX_LEN as usize];
        let mut lens = Vec::with_capacity(n);
        for (p, (len, bases)) in pairs.into_iter().enumerate() {
            let len = len as usize;
            q[p * MAX_LEN as usize..p * MAX_LEN as usize + len].copy_from_slice(&bases[..len]);
            t[p * MAX_LEN as usize..p * MAX_LEN as usize + len]
                .copy_from_slice(&bases[MAX_LEN as usize..MAX_LEN as usize + len]);
            lens.push(len as u32);
        }
        (q, t, lens)
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    #[test]
    fn gpu_global_matches_cpu((q, t, lens) in workload()) {
        let got = gpu_scores(DpMode::Global, false, &q, &t, &lens);
        for (p, &len) in lens.iter().enumerate() {
            let base = p * MAX_LEN as usize;
            let want = cpu_score(DpMode::Global, &q[base..base + len as usize], &t[base..base + len as usize]);
            prop_assert_eq!(got[p], want, "pair {}", p);
        }
    }

    #[test]
    fn gpu_local_matches_cpu((q, t, lens) in workload()) {
        let got = gpu_scores(DpMode::Local, false, &q, &t, &lens);
        for (p, &len) in lens.iter().enumerate() {
            let base = p * MAX_LEN as usize;
            let want = cpu_score(DpMode::Local, &q[base..base + len as usize], &t[base..base + len as usize]);
            prop_assert_eq!(got[p], want, "pair {}", p);
        }
    }

    #[test]
    fn gpu_semiglobal_matches_cpu((q, t, lens) in workload()) {
        let got = gpu_scores(DpMode::SemiGlobal, false, &q, &t, &lens);
        for (p, &len) in lens.iter().enumerate() {
            let base = p * MAX_LEN as usize;
            let want = cpu_score(DpMode::SemiGlobal, &q[base..base + len as usize], &t[base..base + len as usize]);
            prop_assert_eq!(got[p], want, "pair {}", p);
        }
    }

    #[test]
    fn gpu_extend_matches_cpu((q, t, lens) in workload()) {
        let mode = DpMode::Extend { zdrop: 10 };
        let got = gpu_scores(mode, false, &q, &t, &lens);
        for (p, &len) in lens.iter().enumerate() {
            let base = p * MAX_LEN as usize;
            let want = cpu_score(mode, &q[base..base + len as usize], &t[base..base + len as usize]);
            prop_assert_eq!(got[p], want, "pair {}", p);
        }
    }

    #[test]
    fn smem_and_local_rows_agree((q, t, lens) in workload()) {
        // The row-storage location is a pure timing choice; results must
        // be identical.
        let local = gpu_scores(DpMode::Global, false, &q, &t, &lens);
        let smem = gpu_scores(DpMode::Global, true, &q, &t, &lens);
        prop_assert_eq!(local, smem);
    }
}
