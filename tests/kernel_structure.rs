//! Structural checks on every generated device kernel: they validate,
//! disassemble to the expected instruction families, and declare sane
//! static resources.

use ggpu_isa::{InstrClass, Kernel};
use ggpu_kernels::dp::{build_dp_kernel, build_dp_parent, DpKernelCfg, DpMode};
use ggpu_kernels::{all_benchmarks, Scale};

fn dp_cfg(mode: DpMode) -> DpKernelCfg {
    DpKernelCfg {
        mode,
        max_len: 24,
        rows_in_smem: false,
        threads_per_cta: 64,
        matches: 2,
        mismatch: -3,
        open: 5,
        extend: 2,
        shared_target: false,
        subst_matrix: None,
    }
}

fn class_counts(k: &Kernel) -> [usize; 5] {
    let mut c = [0usize; 5];
    for i in &k.instrs {
        let idx = match i.class() {
            InstrClass::Int => 0,
            InstrClass::Fp => 1,
            InstrClass::LdSt => 2,
            InstrClass::Sfu => 3,
            InstrClass::Ctrl => 4,
        };
        c[idx] += 1;
    }
    c
}

#[test]
fn dp_kernels_validate_in_every_mode() {
    for mode in [
        DpMode::Global,
        DpMode::Local,
        DpMode::SemiGlobal,
        DpMode::Extend { zdrop: 20 },
    ] {
        let k = build_dp_kernel("t", &dp_cfg(mode));
        k.validate().expect("kernel must validate");
        let c = class_counts(&k);
        assert!(c[0] > 20, "{mode:?}: integer ops expected");
        assert!(c[2] > 5, "{mode:?}: memory ops expected");
        assert!(c[4] > 3, "{mode:?}: control flow expected");
        // Static instruction stream stays compact (it's a loop, not an
        // unrolled matrix).
        assert!(k.instrs.len() < 400, "{mode:?}: {} instrs", k.instrs.len());
    }
}

#[test]
fn dp_kernel_disassembles_with_expected_mnemonics() {
    let k = build_dp_kernel("t", &dp_cfg(DpMode::Global));
    let d = k.disassemble();
    for needle in [
        "ld.param",
        "ld.const",
        "ld.global",
        "st.local",
        "bra",
        "exit",
    ] {
        assert!(d.contains(needle), "missing `{needle}` in:\n{d}");
    }
}

#[test]
fn smem_variant_declares_shared_memory() {
    let mut cfg = dp_cfg(DpMode::Global);
    cfg.rows_in_smem = true;
    let k = build_dp_kernel("t", &cfg);
    assert_eq!(k.smem_per_cta, cfg.row_bytes() * cfg.threads_per_cta);
    assert!(k.disassemble().contains("ld.shared"));
    let k2 = build_dp_kernel("t", &dp_cfg(DpMode::Global));
    assert_eq!(k2.smem_per_cta, 0);
    assert_eq!(
        k2.local_bytes_per_thread,
        dp_cfg(DpMode::Global).row_bytes()
    );
}

#[test]
fn matrix_mode_reads_const_scores() {
    let mut cfg = dp_cfg(DpMode::Global);
    cfg.subst_matrix = Some(ggpu_genomics::blosum62_index_matrix());
    let k = build_dp_kernel("t", &cfg);
    k.validate().expect("valid");
    assert_eq!(k.cmem_bytes, 32 + 20 * 32 * 8);
    // Matrix mode drops the match/mismatch select in the inner loop.
    let plain = build_dp_kernel("t", &dp_cfg(DpMode::Global));
    assert!(k.cmem_bytes > plain.cmem_bytes);
}

#[test]
fn parent_kernel_launches_and_syncs() {
    let parent = build_dp_parent("p", 0);
    parent.validate().expect("valid");
    let d = parent.disassemble();
    assert!(d.contains("launch k0"));
    assert!(d.contains("cudaDeviceSynchronize"));
}

#[test]
fn every_benchmark_reports_resources() {
    for b in all_benchmarks(Scale::Tiny) {
        let r = b.resources();
        assert!(
            (16..=255).contains(&r.regs_per_thread),
            "{}: {} regs",
            b.abbrev(),
            r.regs_per_thread
        );
        assert!(r.threads_per_cta >= 32, "{}", b.abbrev());
        assert!(r.cmem_bytes > 0, "{}: all benchmarks use const", b.abbrev());
        if b.table3().shared_memory {
            assert!(r.smem_per_cta > 0, "{}", b.abbrev());
        } else {
            assert_eq!(r.smem_per_cta, 0, "{}", b.abbrev());
        }
    }
}

#[test]
fn paper_scale_instances_construct() {
    // Paper-shaped workloads must at least build. Constructing a benchmark
    // computes its CPU oracle, which for the pairwise benchmarks at Paper
    // scale costs tens of seconds — sample the cheaper ones here.
    use ggpu_kernels::{cluster::ClusterBench, nvb::NvbBench, star::StarBench, Benchmark};
    let star = StarBench::new(Scale::Paper);
    assert_eq!(star.table3().grid, (12, 1, 1));
    let cluster = ClusterBench::new(Scale::Paper);
    assert_eq!(cluster.table3().grid, (128, 1, 1));
    let nvb = NvbBench::new(Scale::Paper);
    assert_eq!(nvb.table3().grid, (2048, 1, 1));
    let _ = (star.resources(), cluster.resources(), nvb.resources());
}
