//! Node-level determinism: a multi-GPU [`GpuNode`] run is bit-identical —
//! same per-device statistics, kernel records, trace events, and merged
//! result bytes — regardless of host parallelism (parallel vs serial
//! device threads, and any per-device `sim_threads`). Also pins the
//! telescoping contract (per-device counters sum exactly to node totals)
//! and device-scoped fault isolation (a stream fault on one device leaves
//! every other device's run untouched).

use ggpu_isa::{KernelBuilder, KernelId, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::{
    shard_ranges, GpuNode, KernelRecord, LaunchOptions, NodeConfig, NodeStats, TraceEvent,
};

const N_ITEMS: usize = 512;

/// Kernel: out[tid] = base + tid * 3, with a short data-dependent loop so
/// the grids exercise scheduling, not just one store.
fn work_program() -> (Program, KernelId) {
    let mut b = KernelBuilder::new("node-work");
    let tid = b.global_tid();
    let base = b.reg();
    b.ld_param(base, 1);
    let v = b.reg();
    b.imul(v, tid, Operand::imm(3));
    b.iadd(v, v, Operand::reg(base));
    let out = b.reg();
    b.ld_param(out, 0);
    let addr = b.reg();
    b.imul(addr, tid, Operand::imm(8));
    b.iadd(addr, addr, Operand::reg(out));
    b.st(Space::Global, Width::B64, Operand::reg(v), addr, 0);
    b.exit();
    let mut p = Program::new();
    let k = p.add(b.finish());
    (p, k)
}

/// Kernel: a single thread stores far out of bounds (guest fault).
fn oob_program() -> (Program, KernelId, KernelId) {
    let (mut p, _) = work_program();
    let mut b = KernelBuilder::new("oob");
    let out = b.reg();
    b.ld_param(out, 0);
    b.st(Space::Global, Width::B64, Operand::imm(1), out, 1 << 30);
    b.exit();
    let bad = p.add(b.finish());
    (p, KernelId(0), bad)
}

/// One full sharded run: per-device compute over `shard_ranges`, results
/// gathered to device 0 over the fabric, read back merged. Returns
/// everything observable about the run.
#[allow(clippy::type_complexity)]
fn run_sharded(
    n_devices: usize,
    parallel_hosts: bool,
    sim_threads: usize,
) -> (
    NodeStats,
    Vec<u8>,
    Vec<Vec<KernelRecord>>,
    Vec<Vec<TraceEvent>>,
) {
    let (p, k) = work_program();
    let mut cfg = NodeConfig::test_small(n_devices).with_parallel_hosts(parallel_hosts);
    cfg.gpu = cfg
        .gpu
        .with_sim_threads(sim_threads)
        .with_kernel_records(true);
    cfg.gpu.trace = true;
    let mut node = GpuNode::new(p, cfg);

    let shards = shard_ranges(N_ITEMS, n_devices);
    let gather = node.device_mut(0).malloc(N_ITEMS as u64 * 8);
    let mut outs = Vec::new();
    for (d, shard) in shards.iter().enumerate() {
        let n = shard.len() as u64;
        let out = node.device_mut(d).malloc(n * 8);
        let ctas = n.div_ceil(32).max(1) as u32;
        // The shard's global base rides in as a parameter so the merged
        // bytes are position-dependent (a wrong merge order would show).
        node.device_mut(d).launch(
            k,
            LaunchDims::linear(ctas, 32),
            &[out.0, shard.start as u64 * 3],
        );
        outs.push(out);
    }
    node.sync_all();
    for (d, shard) in shards.iter().enumerate().skip(1) {
        node.p2p_copy(
            d,
            outs[d],
            0,
            ggpu_sim::DevicePtr(gather.0 + shard.start as u64 * 8),
            shard.len() * 8,
        );
    }
    node.sync_all();
    let head = shards[0].len() * 8;
    let first = node.device_mut(0).memcpy_d2h(outs[0], head);
    let mut merged = first;
    let rest = node.device_mut(0).memcpy_d2h(
        ggpu_sim::DevicePtr(gather.0 + head as u64),
        N_ITEMS * 8 - head,
    );
    merged.extend_from_slice(&rest);

    let stats = node.stats();
    let records = (0..n_devices)
        .map(|d| node.device(d).kernel_records().to_vec())
        .collect();
    let traces = (0..n_devices)
        .map(|d| node.device(d).trace_events().to_vec())
        .collect();
    (stats, merged, records, traces)
}

#[test]
fn two_and_four_device_runs_are_bit_identical_across_host_parallelism() {
    for n_devices in [2usize, 4] {
        let baseline = run_sharded(n_devices, false, 1);
        for (parallel_hosts, sim_threads) in [(true, 1), (false, 4), (true, 4)] {
            let run = run_sharded(n_devices, parallel_hosts, sim_threads);
            assert_eq!(
                baseline.0, run.0,
                "stats diverge at {n_devices} devices, parallel_hosts={parallel_hosts}, sim_threads={sim_threads}"
            );
            assert_eq!(baseline.1, run.1, "merged result bytes diverge");
            assert_eq!(baseline.2, run.2, "kernel records diverge");
            assert_eq!(baseline.3, run.3, "trace events diverge");
        }
    }
}

#[test]
fn merged_shards_match_expected_values() {
    let (stats, merged, records, _) = run_sharded(4, true, 1);
    for (i, chunk) in merged.chunks_exact(8).enumerate() {
        let v = u64::from_le_bytes(chunk.try_into().unwrap());
        assert_eq!(v, i as u64 * 3, "item {i} merged out of order");
    }
    assert_eq!(stats.devices.len(), 4);
    for (d, recs) in records.iter().enumerate() {
        assert_eq!(recs.len(), 1, "one grid per device");
        assert_eq!(
            ggpu_sim::grid_device(recs[0].grid),
            d,
            "grid handle encodes its device"
        );
    }
}

#[test]
fn per_device_counters_telescope_to_node_totals() {
    let (stats, _, _, _) = run_sharded(4, true, 4);
    let total = stats.total();
    macro_rules! telescopes {
        ($($field:tt)*) => {
            assert_eq!(
                stats.devices.iter().map(|d| d.$($field)*).sum::<u64>(),
                total.$($field)*,
                stringify!($($field)*)
            );
        };
    }
    telescopes!(host.kernel_launches);
    telescopes!(host.pci_count);
    telescopes!(host.h2d_bytes);
    telescopes!(host.d2h_bytes);
    telescopes!(host.p2p_sends);
    telescopes!(host.p2p_recvs);
    telescopes!(host.p2p_bytes_out);
    telescopes!(host.p2p_bytes_in);
    telescopes!(host.p2p_cycles);
    telescopes!(sm.issued);
    telescopes!(l1.read_access);
    telescopes!(l2.read_access);
    telescopes!(dram.requests);
    telescopes!(icnt_req.packets);
    // Every byte sent over the fabric landed on some device.
    assert_eq!(total.host.p2p_bytes_out, total.host.p2p_bytes_in);
    assert!(total.host.p2p_sends > 0, "the workload used the fabric");
}

#[test]
fn stream_fault_on_one_device_leaves_others_untouched() {
    let run = |inject: bool| {
        let (p, good, bad) = oob_program();
        let mut cfg = NodeConfig::test_small(2);
        cfg.gpu = cfg
            .gpu
            .with_stream_isolation(true)
            .with_kernel_records(true);
        let mut node = GpuNode::new(p, cfg);
        let s0 = node.device_mut(0).create_stream();
        let out0 = node.device_mut(0).malloc(64 * 8);
        let out1 = node.device_mut(1).malloc(64 * 8);
        let kernel0 = if inject { bad } else { good };
        node.device_mut(0)
            .try_launch_on(
                kernel0,
                LaunchDims::linear(2, 32),
                &[out0.0, 0],
                LaunchOptions {
                    stream: s0,
                    deadline: None,
                },
            )
            .expect("launch");
        node.device_mut(1)
            .launch(good, LaunchDims::linear(2, 32), &[out1.0, 0]);
        let results = node.try_sync_all();
        (node, s0, out1, results)
    };

    let (mut faulted, s0, out1, results) = run(true);
    // Device 0's fault is scoped to its stream; the node-wide sync itself
    // succeeds on both devices under stream isolation.
    for r in &results {
        assert!(r.is_ok(), "stream-isolated fault must not fail the sync");
    }
    assert!(
        faulted.device(0).stream_fault(s0).is_some(),
        "device 0's stream carries the fault"
    );
    assert!(faulted.device(1).stream_fault(s0).is_none());
    let bytes_faulted = faulted.device_mut(1).memcpy_d2h(out1, 64 * 8);

    let (mut clean, _, out1c, _) = run(false);
    let bytes_clean = clean.device_mut(1).memcpy_d2h(out1c, 64 * 8);
    assert_eq!(
        bytes_faulted, bytes_clean,
        "device 1's results must not depend on device 0's fault"
    );
    assert_eq!(
        faulted.stats().devices[1],
        clean.stats().devices[1],
        "device 1's counters must not depend on device 0's fault"
    );
}
