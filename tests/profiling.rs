//! Integration tests for the time-resolved profiling layer: per-kernel
//! counter scoping, the interval sampler, the structured event trace, and
//! the machine-readable JSON exports.

use ggpu_core::json::Json;
use ggpu_core::{benchmark, chrome_trace_json, GpuConfig, Scale, TraceEventKind};
use ggpu_isa::{InstrClass, KernelBuilder, LaunchDims, Operand, Program, Space, Width};
use ggpu_sim::Gpu;

/// One thread-indexed global store per thread — enough issued instructions
/// to make the counters move, trivially verifiable.
fn write_tids_program() -> Program {
    let mut program = Program::new();
    let mut b = KernelBuilder::new("write_tids");
    let tid = b.global_tid();
    let out = b.reg();
    b.ld_param(out, 0);
    let oa = b.reg();
    b.imul(oa, tid, Operand::imm(8));
    b.iadd(oa, oa, Operand::reg(out));
    b.st(Space::Global, Width::B64, Operand::reg(tid), oa, 0);
    b.exit();
    program.add(b.finish());
    program
}

fn profiled_config() -> GpuConfig {
    let mut c = GpuConfig::test_small();
    c.sample_interval_cycles = 1_000;
    c.trace = true;
    c
}

#[test]
fn per_kernel_deltas_sum_to_run_total() {
    let program = write_tids_program();
    let kid = ggpu_isa::KernelId(0);
    let mut gpu = Gpu::new(program, profiled_config());
    let buf = gpu.malloc(256 * 8);
    for _ in 0..3 {
        gpu.run_kernel(kid, LaunchDims::linear(4, 64), &[buf.0]);
    }
    let profile = gpu.take_profile();
    assert_eq!(profile.kernels.len(), 3, "one record per serialized launch");
    let issued: u64 = profile.kernels.iter().map(|k| k.stats.sm.issued).sum();
    let threads: u64 = profile
        .kernels
        .iter()
        .map(|k| k.stats.sm.thread_instrs)
        .sum();
    let ctas: u64 = profile
        .kernels
        .iter()
        .map(|k| k.stats.sm.ctas_completed)
        .sum();
    assert_eq!(issued, profile.stats.sm.issued, "issued telescopes");
    assert_eq!(
        threads, profile.stats.sm.thread_instrs,
        "thread instrs telescope"
    );
    assert_eq!(
        ctas, profile.stats.sm.ctas_completed,
        "CTA completions telescope"
    );
    assert!(issued > 0, "the kernels must actually issue instructions");
    for k in &profile.kernels {
        assert!(!k.is_cdp_child(), "host launches have no parent");
        assert!(k.launch_cycle <= k.start_cycle && k.start_cycle <= k.retire_cycle);
    }
}

#[test]
fn cdp_children_recorded_with_parent_and_depth() {
    let mut config = GpuConfig::rtx3070();
    config.trace = true;
    let bench = benchmark(Scale::Tiny, "SW").expect("SW exists");
    let r = bench.run(&config, true);
    assert!(r.verified);
    let profile = r.profile.expect("tracing enables profiling");
    let children: Vec<_> = profile
        .kernels
        .iter()
        .filter(|k| k.is_cdp_child())
        .collect();
    let parents: Vec<_> = profile
        .kernels
        .iter()
        .filter(|k| !k.is_cdp_child())
        .collect();
    assert!(
        !children.is_empty(),
        "CDP run must record device-launched children"
    );
    assert!(
        !parents.is_empty(),
        "host-launched parents must also be recorded"
    );
    for c in &children {
        assert!(c.depth >= 1, "children sit below the host launch");
        let parent_grid = c.parent.expect("child has a parent handle");
        assert!(
            profile.kernels.iter().any(|k| k.grid == parent_grid),
            "the parent grid {parent_grid} must have its own record"
        );
    }
    for p in &parents {
        assert_eq!(p.depth, 0);
        assert!(p.parent.is_none());
    }
    // The timeline carries the same structure as typed events.
    let enqueues = profile
        .events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::CdpEnqueue { .. }))
        .count();
    assert_eq!(enqueues, children.len(), "one CdpEnqueue per child record");
}

#[test]
fn sampler_covers_run_and_sums_to_aggregates() {
    let program = write_tids_program();
    let kid = ggpu_isa::KernelId(0);
    let mut config = GpuConfig::test_small();
    config.sample_interval_cycles = 500;
    let mut gpu = Gpu::new(program, config);
    let buf = gpu.malloc(1024 * 8);
    gpu.run_kernel(kid, LaunchDims::linear(16, 64), &[buf.0]);
    // Take the profile before any trailing D2H copy: host PCI counters
    // bumped after the last synchronize sit outside every sample window.
    let profile = gpu.take_profile();
    assert!(!profile.samples.is_empty(), "at least one window per run");
    let mut expect_start = 0;
    for s in &profile.samples {
        assert_eq!(s.start_cycle, expect_start, "windows are contiguous");
        assert!(s.end_cycle > s.start_cycle);
        assert!(
            s.end_cycle - s.start_cycle <= 500,
            "window never exceeds the interval"
        );
        expect_start = s.end_cycle;
    }
    let issued: u64 = profile.samples.iter().map(|s| s.stats.sm.issued).sum();
    let l1: u64 = profile.samples.iter().map(|s| s.stats.l1.accesses()).sum();
    let kernel_cycles: u64 = profile
        .samples
        .iter()
        .map(|s| s.stats.host.kernel_cycles)
        .sum();
    assert_eq!(
        issued, profile.stats.sm.issued,
        "issued sums to the aggregate"
    );
    assert_eq!(
        l1,
        profile.stats.l1.accesses(),
        "L1 accesses sum to the aggregate"
    );
    assert_eq!(
        kernel_cycles, profile.stats.host.kernel_cycles,
        "kernel cycles sum to the aggregate"
    );
}

#[test]
fn instruction_mix_fractions_sum_to_one() {
    let bench = benchmark(Scale::Tiny, "SW").expect("SW exists");
    let r = bench.run(&GpuConfig::rtx3070(), false);
    assert!(r.verified);
    let classes = [
        InstrClass::Int,
        InstrClass::Fp,
        InstrClass::LdSt,
        InstrClass::Sfu,
        InstrClass::Ctrl,
    ];
    let total: f64 = classes.iter().map(|&c| r.stats.sm.class_fraction(c)).sum();
    assert!(
        (total - 1.0).abs() < 1e-9,
        "instruction-mix fractions must sum to 1.0, got {total}"
    );
    let spaces: f64 = ggpu_isa::Space::ALL
        .iter()
        .map(|&s| r.stats.sm.space_fraction(s))
        .sum();
    assert!(
        (spaces - 1.0).abs() < 1e-9,
        "memory-space fractions must sum to 1.0, got {spaces}"
    );
}

#[test]
fn profile_json_round_trips() {
    let mut config = GpuConfig::rtx3070();
    config.sample_interval_cycles = 10_000;
    config.trace = true;
    let bench = benchmark(Scale::Tiny, "NW").expect("NW exists");
    let r = bench.run(&config, false);
    assert!(r.verified);
    let profile = r.profile.expect("profiling enabled");
    let doc = profile.to_json();
    let parsed = Json::parse(&doc).expect("ProfileReport JSON parses");
    let kernels = parsed
        .get("kernels")
        .and_then(Json::as_arr)
        .expect("kernels array");
    assert_eq!(kernels.len(), profile.kernels.len());
    let samples = parsed
        .get("samples")
        .and_then(Json::as_arr)
        .expect("samples array");
    assert_eq!(samples.len(), profile.samples.len());
    let ipc = parsed
        .get("stats")
        .and_then(|s| s.get("derived"))
        .and_then(|d| d.get("ipc"))
        .and_then(Json::as_f64)
        .expect("stats.derived.ipc");
    assert!((ipc - profile.stats.ipc()).abs() < 1e-9);
}

#[test]
fn chrome_trace_is_well_formed() {
    let mut config = GpuConfig::rtx3070();
    config.trace = true;
    let bench = benchmark(Scale::Tiny, "SW").expect("SW exists");
    let r = bench.run(&config, true);
    assert!(r.verified);
    let profile = r.profile.expect("profiling enabled");
    let doc = chrome_trace_json(
        &[("SW-CDP".to_string(), profile.events.as_slice())],
        config.clock_ghz,
    );
    let parsed = Json::parse(&doc).expect("Chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("phase field");
        assert!(
            matches!(ph, "X" | "i" | "M"),
            "only slices, instants, and metadata are emitted, got {ph}"
        );
        assert!(ev.get("name").is_some(), "every event is named");
    }
    // At least one complete slice (a kernel execution) with a duration.
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(Json::as_str) == Some("X") && e.get("dur").is_some()));
}

#[test]
fn profiling_does_not_perturb_stats() {
    let bench = benchmark(Scale::Tiny, "GL").expect("GL exists");
    let plain = bench.run(&GpuConfig::rtx3070(), false);
    let profiled = bench.run(&profiled_rtx(), false);
    assert!(plain.verified && profiled.verified);
    assert_eq!(plain.kernel_cycles, profiled.kernel_cycles);
    assert_eq!(
        plain.stats, profiled.stats,
        "profiling must not change simulated behaviour or counters"
    );
}

fn profiled_rtx() -> GpuConfig {
    let mut c = GpuConfig::rtx3070();
    c.sample_interval_cycles = 5_000;
    c.trace = true;
    c
}
