//! Property-based tests over the genomics substrate's core invariants.

use ggpu_genomics::{
    center_star, greedy_cluster, ksw_extend, nw_align, nw_score, semiglobal_align, sw_align,
    sw_score, ClusterParams, DnaSeq, FmIndex, GapModel, PairHmm, Simple,
};
use proptest::prelude::*;

const SUB: Simple = Simple {
    matches: 2,
    mismatch: -3,
};
const GAPS: GapModel = GapModel::Affine { open: 5, extend: 2 };

fn dna_codes(max: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..4, 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nw_score_is_symmetric(q in dna_codes(40), t in dna_codes(40)) {
        // Global alignment with a symmetric substitution matrix is
        // symmetric in its arguments.
        prop_assert_eq!(nw_score(&q, &t, &SUB, GAPS), nw_score(&t, &q, &SUB, GAPS));
    }

    #[test]
    fn nw_self_alignment_is_perfect(q in dna_codes(60)) {
        prop_assert_eq!(nw_score(&q, &q, &SUB, GAPS), 2 * q.len() as i32);
    }

    #[test]
    fn nw_traceback_consumes_both_sequences(q in dna_codes(40), t in dna_codes(40)) {
        let a = nw_align(&q, &t, &SUB, GAPS);
        prop_assert_eq!(a.query_len(), q.len());
        prop_assert_eq!(a.target_len(), t.len());
        prop_assert_eq!(a.score, nw_score(&q, &t, &SUB, GAPS));
    }

    #[test]
    fn sw_score_nonnegative_and_bounded(q in dna_codes(40), t in dna_codes(40)) {
        let s = sw_score(&q, &t, &SUB, GAPS);
        prop_assert!(s >= 0);
        prop_assert!(s <= 2 * q.len().min(t.len()) as i32);
    }

    #[test]
    fn sw_at_least_nw(q in dna_codes(40), t in dna_codes(40)) {
        // A local alignment can always do at least as well as a global one.
        prop_assert!(sw_score(&q, &t, &SUB, GAPS) >= nw_score(&q, &t, &SUB, GAPS));
    }

    #[test]
    fn sw_traceback_range_matches_cigar(q in dna_codes(40), t in dna_codes(40)) {
        let a = sw_align(&q, &t, &SUB, GAPS);
        prop_assert_eq!(a.query.1 - a.query.0, a.query_len());
        prop_assert_eq!(a.target.1 - a.target.0, a.target_len());
    }

    #[test]
    fn semiglobal_at_least_global(q in dna_codes(30), t in dna_codes(30)) {
        // Free target-end gaps can only help.
        let sg = semiglobal_align(&q, &t, &SUB, GAPS).score;
        prop_assert!(sg >= nw_score(&q, &t, &SUB, GAPS));
    }

    #[test]
    fn ksw_scores_bounded_and_monotone_in_band(q in dna_codes(30), t in dna_codes(30)) {
        let narrow = ksw_extend(&q, &t, &SUB, GAPS, 2, i32::MAX);
        let wide = ksw_extend(&q, &t, &SUB, GAPS, usize::MAX, i32::MAX);
        prop_assert!(wide.score >= narrow.score, "wider band can't hurt");
        prop_assert!(wide.score >= 0);
        prop_assert!(wide.query_end <= q.len());
        prop_assert!(wide.target_end <= t.len());
    }

    #[test]
    fn revcomp_is_involutive(codes in dna_codes(100)) {
        let s = DnaSeq::from_codes(codes);
        prop_assert_eq!(s.revcomp().revcomp(), s);
    }

    #[test]
    fn fmindex_count_matches_naive(genome in dna_codes(300), pat in dna_codes(6)) {
        let g = DnaSeq::from_codes(genome.clone());
        let fm = FmIndex::new(&g);
        let naive = if pat.len() > genome.len() { 0 } else {
            (0..=genome.len() - pat.len())
                .filter(|&i| genome[i..i + pat.len()] == pat[..])
                .count()
        };
        prop_assert_eq!(fm.count(&DnaSeq::from_codes(pat)), naive);
    }

    #[test]
    fn fmindex_find_positions_contain_pattern(genome in dna_codes(200), start in 0usize..150, len in 3usize..8) {
        prop_assume!(start + len <= genome.len());
        let g = DnaSeq::from_codes(genome.clone());
        let fm = FmIndex::new(&g);
        let pat = g.slice(start, len);
        let hits = fm.find(&pat);
        prop_assert!(hits.contains(&start), "own position must be found");
        for h in hits {
            prop_assert_eq!(&genome[h..h + len], pat.codes());
        }
    }

    #[test]
    fn msa_rows_degap_to_inputs(n in 2usize..5, len in 4usize..20, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let seqs: Vec<Vec<u8>> = ggpu_genomics::sequence_family(n, len, 0.1, 0.05, &mut rng)
            .into_iter()
            .map(|s| s.codes().to_vec())
            .collect();
        let msa = center_star(&seqs, &SUB, GAPS);
        prop_assert_eq!(msa.rows.len(), seqs.len());
        let cols = msa.columns();
        for (i, row) in msa.rows.iter().enumerate() {
            prop_assert_eq!(row.len(), cols, "rows must be rectangular");
            let degapped: Vec<u8> = row.iter().copied().filter(|&c| c != ggpu_genomics::GAP).collect();
            prop_assert_eq!(&degapped, &seqs[i], "row {} must de-gap to its input", i);
        }
    }

    #[test]
    fn cluster_partition_is_total_and_consistent(n in 1usize..12, seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let seqs: Vec<Vec<u8>> = (0..n)
            .map(|_| ggpu_genomics::random_genome(40, &mut rng).codes().to_vec())
            .collect();
        let clusters = greedy_cluster(&seqs, ClusterParams::default());
        let mut seen: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>(), "every sequence in exactly one cluster");
        for c in &clusters {
            prop_assert!(c.members.contains(&c.representative));
        }
    }

    #[test]
    fn pairhmm_likelihoods_are_probabilities(read in dna_codes(12), hap in dna_codes(20)) {
        let hmm = PairHmm::default();
        let quals = vec![30u8; read.len()];
        let lk = hmm.forward(&read, &quals, &hap);
        // log10 of a probability: must be <= 0 and finite for nonempty inputs.
        prop_assert!(lk <= 1e-9, "got log10 likelihood {lk}");
        prop_assert!(lk.is_finite());
    }

    #[test]
    fn pairhmm_prefers_the_true_haplotype(hap in dna_codes(24), start in 0usize..12) {
        prop_assume!(hap.len() >= 16 && start + 8 <= hap.len());
        let read: Vec<u8> = hap[start..start + 8].to_vec();
        let other: Vec<u8> = hap.iter().map(|&c| (c + 2) % 4).collect();
        let hmm = PairHmm::default();
        let quals = vec![35u8; read.len()];
        let true_lk = hmm.forward(&read, &quals, &hap);
        let wrong_lk = hmm.forward(&read, &quals, &other);
        prop_assert!(true_lk > wrong_lk);
    }
}
