//! Deterministic fault-injection soak for `ggpu-serve`.
//!
//! A seeded stream of mixed-shape alignment jobs is pushed through the
//! service while the fault plan injects a mid-run hang (dropped memory
//! reply) and a dropped PCIe transfer. The soak asserts the headline
//! serving invariants:
//!
//! * no panic and no device-wide fault — every injected fault stays
//!   scoped to the stream it hit;
//! * every admitted job reaches a terminal outcome, and every `Done`
//!   outcome matches the CPU oracle even when its batch rode a killed
//!   stream and was retried;
//! * the whole run — outcomes, metrics, and per-grid kernel records —
//!   is bit-identical at `sim_threads` 1 and 4, fault plan included;
//! * overload storms answer with typed `Overloaded` errors, never an
//!   allocation failure or abort;
//! * impossible cycle budgets degrade gracefully: the offending job gets
//!   `DeadlineExceeded`, its batch-mates still complete.

use ggpu_genomics::{random_genome, sw_score, GapModel, PairHmm, Simple};
use ggpu_kernels::nvb::FmTables;
use ggpu_kernels::pairhmm::{GAP_EXT_P, GAP_OPEN_P};
use ggpu_kernels::pairwise::{GAP_EXTEND, GAP_OPEN, MATCH, MISMATCH};
use ggpu_serve::{
    AdmitError, JobId, JobKind, JobOutcome, JobOutput, Priority, ServeConfig, Service, Tenant,
};
use ggpu_sim::{FaultPlan, GpuConfig};
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

const GENOME_LEN: usize = 600;
const FM_READ_LEN: usize = 16;
const PHMM_READ: usize = 10;
const PHMM_HAP: usize = 14;

/// The CPU-side ground truth for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expected {
    Score(i64),
    Mapping(u64),
    LogLik(f64),
}

struct Oracle {
    genome: Vec<u8>,
    tables: FmTables,
    hmm: PairHmm,
}

impl Oracle {
    fn new(seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let genome = random_genome(GENOME_LEN, &mut rng).codes().to_vec();
        let tables = FmTables::build(&genome);
        Oracle {
            genome,
            tables,
            hmm: PairHmm {
                gap_open: GAP_OPEN_P,
                gap_ext: GAP_EXT_P,
            },
        }
    }

    /// Generate the `i`-th job of the soak plus its expected result.
    /// Deterministic given the RNG state, independent of service state.
    fn gen_job(&self, rng: &mut rand::rngs::StdRng) -> (JobKind, Expected) {
        match rng.gen_range(0..3u32) {
            0 => {
                let ql = rng.gen_range(6..60usize);
                let tl = rng.gen_range(6..60usize);
                let q: Vec<u8> = (0..ql).map(|_| rng.gen_range(0..4u8)).collect();
                let t: Vec<u8> = (0..tl).map(|_| rng.gen_range(0..4u8)).collect();
                let subst = Simple::new(MATCH, MISMATCH);
                let gaps = GapModel::Affine {
                    open: GAP_OPEN,
                    extend: GAP_EXTEND,
                };
                let want = sw_score(&q, &t, &subst, gaps) as i64;
                (
                    JobKind::Pairwise {
                        query: q,
                        target: t,
                    },
                    Expected::Score(want),
                )
            }
            1 => {
                let read: Vec<u8> = if rng.gen_range(0..4u32) == 0 {
                    (0..FM_READ_LEN).map(|_| rng.gen_range(0..4u8)).collect()
                } else {
                    let s = rng.gen_range(0..GENOME_LEN - FM_READ_LEN);
                    self.genome[s..s + FM_READ_LEN].to_vec()
                };
                let want = self.tables.map_read(&read);
                (JobKind::FmMap { read }, Expected::Mapping(want))
            }
            _ => {
                let hap: Vec<u8> = (0..PHMM_HAP).map(|_| rng.gen_range(0..4u8)).collect();
                let s = rng.gen_range(0..=PHMM_HAP - PHMM_READ);
                let read = hap[s..s + PHMM_READ].to_vec();
                let quals: Vec<u8> = (0..PHMM_READ).map(|_| rng.gen_range(15..45u8)).collect();
                let want = self.hmm.forward(&read, &quals, &hap);
                (
                    JobKind::PairHmm { read, quals, hap },
                    Expected::LogLik(want),
                )
            }
        }
    }
}

fn soak_config(oracle: &Oracle, sim_threads: usize, plan: FaultPlan) -> ServeConfig {
    let mut cfg = ServeConfig::test_small();
    cfg.gpu = GpuConfig::test_small().with_sim_threads(sim_threads);
    cfg.gpu.watchdog_cycles = 10_000;
    cfg.gpu.fault_plan = plan;
    cfg.workers = 3;
    cfg.queue_capacity = 24;
    cfg.tenant_quota = 64;
    cfg.max_batch = 4;
    cfg.fm_genome = oracle.genome.clone();
    cfg.fm_read_len = FM_READ_LEN as u32;
    cfg.phmm_read_len = PHMM_READ as u32;
    cfg.phmm_hap_len = PHMM_HAP as u32;
    cfg
}

/// Everything observable about one soak run, for bit-identity checks.
struct SoakRun {
    outcomes: Vec<(JobId, JobOutcome)>,
    metrics: ggpu_serve::ServeMetrics,
    /// `Debug` rendering of every per-grid kernel record (stream ids,
    /// cycle windows, and full per-grid stat deltas included).
    records: String,
    expected: Vec<(JobId, Expected)>,
    overloaded: u64,
}

/// Stream `n_jobs` seeded jobs through the service, interleaving
/// submission waves with scheduling rounds (re-offering anything the
/// bounded queue refused), then drain.
fn run_soak(seed: u64, n_jobs: usize, wave: usize, sim_threads: usize, plan: FaultPlan) -> SoakRun {
    let oracle = Oracle::new(seed);
    let mut svc = Service::new(soak_config(&oracle, sim_threads, plan)).expect("build service");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut pending: VecDeque<(JobKind, Expected)> =
        (0..n_jobs).map(|_| oracle.gen_job(&mut rng)).collect();
    let mut expected = Vec::new();
    let mut overloaded = 0u64;
    let mut rounds = 0u64;
    while !pending.is_empty() {
        // Offer up to `wave` jobs per round; put back whatever the queue
        // refuses and let a scheduling round drain capacity.
        for _ in 0..wave {
            let Some((kind, want)) = pending.pop_front() else {
                break;
            };
            let tenant = Tenant(expected.len() as u32 % 5);
            // Uniform priority: a full queue must answer `Overloaded`
            // rather than shed (priority shedding is covered elsewhere).
            match svc.submit(tenant, Priority(1), None, kind.clone()) {
                Ok(id) => expected.push((id, want)),
                Err(AdmitError::Overloaded { .. }) => {
                    overloaded += 1;
                    pending.push_front((kind, want));
                    break;
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        svc.run_round().expect("no device-wide fault mid-soak");
        rounds += 1;
        assert!(rounds < 2_000, "soak failed to make progress");
    }
    svc.run_until_idle(500)
        .expect("no device-wide fault at drain");
    assert_eq!(svc.backlog(), 0, "drain left work behind");
    let metrics = svc.metrics();
    let records = format!("{:?}", svc.kernel_records());
    SoakRun {
        outcomes: svc.take_outcomes(),
        metrics,
        records,
        expected,
        overloaded,
    }
}

fn assert_done_matches_oracle(run: &SoakRun) {
    assert_eq!(run.outcomes.len(), run.expected.len());
    for ((id, outcome), (xid, want)) in run.outcomes.iter().zip(&run.expected) {
        assert_eq!(id, xid);
        let JobOutcome::Done(out) = outcome else {
            panic!("{id}: expected Done, got {outcome:?}");
        };
        match (out, want) {
            (JobOutput::Score(got), Expected::Score(w)) => {
                assert_eq!(got, w, "{id}: wrong SW score");
            }
            (JobOutput::Mapping { score, pos }, Expected::Mapping(w)) => {
                let packed = ((*score as u64) << 32) | *pos as u64;
                assert_eq!(packed, *w, "{id}: wrong mapping");
            }
            (JobOutput::LogLik(got), Expected::LogLik(w)) => {
                assert!(
                    got.is_finite() && (got - w).abs() <= 1e-9 * w.abs().max(1.0),
                    "{id}: log-lik {got} != {w}"
                );
            }
            (got, want) => panic!("{id}: output kind mismatch: {got:?} vs {want:?}"),
        }
    }
}

/// The fault plan used by the isolation soaks: a dropped PCIe transfer
/// early in the run (slab upload — typed error, host retry) and a dropped
/// memory reply mid-run (grid hang — watchdog kill, stream reset, batch
/// retry). Both injections are one-shot, so retries succeed.
fn soak_plan() -> FaultPlan {
    FaultPlan {
        drop_memcpy: Some(7),
        drop_reply: Some(25),
        ..FaultPlan::default()
    }
}

#[test]
fn soak_faults_stay_stream_scoped_and_results_survive_recovery() {
    let run = run_soak(1001, 36, 6, 1, soak_plan());
    // Every job terminal, every result correct — including the jobs whose
    // batches rode the killed stream and were retried on a fresh one.
    assert_done_matches_oracle(&run);
    let m = run.metrics;
    assert!(
        m.stream_resets >= 1,
        "the dropped reply must have killed (and recovered) a stream: {m:?}"
    );
    assert!(
        m.streams_created > 3,
        "recovery must have moved a worker to a fresh stream: {m:?}"
    );
    assert!(
        m.retries >= 1,
        "killed batches must have been retried: {m:?}"
    );
    assert_eq!(m.completed, 36);
    assert_eq!(m.failed + m.deadline_exceeded + m.shed, 0);
}

#[test]
fn soak_is_bit_identical_across_sim_threads() {
    // Same seed, same fault plan, different engine parallelism: outcomes,
    // serving metrics, and every per-grid record (cycle windows and stat
    // deltas) must match bit-for-bit. `poison_memcpy` is added here so
    // even a silently corrupted payload corrupts *identically*.
    let plan = FaultPlan {
        poison_memcpy: Some(13),
        ..soak_plan()
    };
    let a = run_soak(2002, 30, 6, 1, plan);
    let b = run_soak(2002, 30, 6, 4, plan);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.overloaded, b.overloaded);
    assert_eq!(a.records, b.records, "per-grid records diverged");
}

#[test]
fn overload_storm_is_typed_and_everything_admitted_completes() {
    // A queue of 24 fed 120 jobs six-at-a-time must refuse some
    // submissions with a typed error — and still finish every job it
    // admitted, with no panic and no allocation failure (all device
    // memory is pre-allocated at service build).
    let run = run_soak(3003, 120, 40, 1, FaultPlan::default());
    assert!(
        run.overloaded > 0,
        "120 jobs through a 24-deep queue must hit backpressure"
    );
    assert_done_matches_oracle(&run);
}

#[test]
fn impossible_deadlines_degrade_gracefully() {
    let oracle = Oracle::new(4004);
    let mut svc =
        Service::new(soak_config(&oracle, 1, FaultPlan::default())).expect("build service");
    let mut rng = rand::rngs::StdRng::seed_from_u64(4004 ^ 0x5eed);
    let mut doomed = Vec::new();
    let mut fine = Vec::new();
    for i in 0..12 {
        let (kind, want) = oracle.gen_job(&mut rng);
        // Every third job gets a 5-cycle budget — launch overhead alone
        // exceeds it, so the grid is killed on device, the batch splits,
        // and only the doomed job ends `DeadlineExceeded`.
        if i % 3 == 0 {
            let id = svc
                .submit(Tenant(0), Priority(0), Some(5), kind)
                .expect("admit");
            doomed.push(id);
        } else {
            let id = svc
                .submit(Tenant(0), Priority(0), None, kind)
                .expect("admit");
            fine.push((id, want));
        }
    }
    svc.run_until_idle(500)
        .expect("deadline kills must stay stream-scoped");
    for id in &doomed {
        assert!(
            matches!(svc.outcome(*id), Some(JobOutcome::DeadlineExceeded)),
            "{id}: expected DeadlineExceeded, got {:?}",
            svc.outcome(*id)
        );
    }
    for (id, want) in &fine {
        let Some(JobOutcome::Done(out)) = svc.outcome(*id) else {
            panic!("{id}: batch-mates of doomed jobs must still complete");
        };
        if let (JobOutput::Score(got), Expected::Score(w)) = (out, want) {
            assert_eq!(got, w, "{id}: wrong score after batch split");
        }
    }
    let m = svc.metrics();
    assert_eq!(m.deadline_exceeded, doomed.len() as u64);
    assert!(m.splits >= 1, "deadline kill must split the batch: {m:?}");
    assert!(m.stream_resets >= doomed.len() as u64);
}
