//! Determinism and consistency of the serving telemetry layer.
//!
//! The same fault-injection soak as `tests/serve_soak.rs` — dropped PCIe
//! transfer, dropped memory reply (watchdog kill + stream reset) — is run
//! with telemetry enabled, and the exports are held to the same standard
//! as the device itself:
//!
//! * the JSON report, the unified host+device Chrome trace, and the raw
//!   `ServeEvent` stream are **bit-identical** at `sim_threads` 1 and 4;
//! * histogram bucket counts **telescope** exactly to the `ServeMetrics`
//!   terminal-outcome counters (per tenant, per shape, per outcome);
//! * a request's full path is reconstructible: its trail's grid handle
//!   joins to a device `KernelRecord` and to `KernelStart`/`KernelRetire`
//!   trace events on the same stream, inside the host launch window.

use ggpu_genomics::random_genome;
use ggpu_serve::{
    AdmitError, JobKind, OutcomeTag, Priority, ServeConfig, ServeEventKind, ServeReport, Service,
    Tenant,
};
use ggpu_sim::json::Json;
use ggpu_sim::{FaultPlan, GpuConfig, TraceEventKind};
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

const GENOME_LEN: usize = 600;
const FM_READ_LEN: usize = 16;
const PHMM_READ: usize = 10;
const PHMM_HAP: usize = 14;

fn soak_config(genome: &[u8], sim_threads: usize, plan: FaultPlan) -> ServeConfig {
    let mut cfg = ServeConfig::test_small();
    cfg.gpu = GpuConfig::test_small().with_sim_threads(sim_threads);
    cfg.gpu.watchdog_cycles = 10_000;
    cfg.gpu.fault_plan = plan;
    cfg.workers = 3;
    cfg.queue_capacity = 24;
    cfg.tenant_quota = 64;
    cfg.max_batch = 4;
    cfg.fm_genome = genome.to_vec();
    cfg.fm_read_len = FM_READ_LEN as u32;
    cfg.phmm_read_len = PHMM_READ as u32;
    cfg.phmm_hap_len = PHMM_HAP as u32;
    cfg
}

fn gen_job(genome: &[u8], rng: &mut rand::rngs::StdRng) -> JobKind {
    match rng.gen_range(0..3u32) {
        0 => {
            let ql = rng.gen_range(6..60usize);
            let tl = rng.gen_range(6..60usize);
            JobKind::Pairwise {
                query: (0..ql).map(|_| rng.gen_range(0..4u8)).collect(),
                target: (0..tl).map(|_| rng.gen_range(0..4u8)).collect(),
            }
        }
        1 => {
            let read: Vec<u8> = if rng.gen_range(0..4u32) == 0 {
                (0..FM_READ_LEN).map(|_| rng.gen_range(0..4u8)).collect()
            } else {
                let s = rng.gen_range(0..GENOME_LEN - FM_READ_LEN);
                genome[s..s + FM_READ_LEN].to_vec()
            };
            JobKind::FmMap { read }
        }
        _ => {
            let hap: Vec<u8> = (0..PHMM_HAP).map(|_| rng.gen_range(0..4u8)).collect();
            let s = rng.gen_range(0..=PHMM_HAP - PHMM_READ);
            let read = hap[s..s + PHMM_READ].to_vec();
            let quals: Vec<u8> = (0..PHMM_READ).map(|_| rng.gen_range(15..45u8)).collect();
            JobKind::PairHmm { read, quals, hap }
        }
    }
}

/// The PR 6 soak's fault plan: one dropped PCIe transfer (host retry) and
/// one dropped memory reply (grid hang → watchdog kill → stream reset).
fn soak_plan() -> FaultPlan {
    FaultPlan {
        drop_memcpy: Some(7),
        drop_reply: Some(25),
        ..FaultPlan::default()
    }
}

/// Stream `n_jobs` seeded jobs through a telemetry-observed service and
/// return the final report.
fn run_soak(seed: u64, n_jobs: usize, wave: usize, sim_threads: usize) -> ServeReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let genome = random_genome(GENOME_LEN, &mut rng).codes().to_vec();
    let mut svc =
        Service::new(soak_config(&genome, sim_threads, soak_plan())).expect("build service");
    let mut gen_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut pending: VecDeque<JobKind> = (0..n_jobs)
        .map(|_| gen_job(&genome, &mut gen_rng))
        .collect();
    let mut submitted = 0usize;
    let mut rounds = 0u64;
    while !pending.is_empty() {
        for _ in 0..wave {
            let Some(kind) = pending.pop_front() else {
                break;
            };
            let tenant = Tenant(submitted as u32 % 5);
            match svc.submit(tenant, Priority(1), None, kind.clone()) {
                Ok(_) => submitted += 1,
                Err(AdmitError::Overloaded { .. }) => {
                    pending.push_front(kind);
                    break;
                }
                Err(other) => panic!("unexpected admission error: {other}"),
            }
        }
        svc.run_round().expect("no device-wide fault mid-soak");
        rounds += 1;
        assert!(rounds < 2_000, "soak failed to make progress");
    }
    svc.run_until_idle(500)
        .expect("no device-wide fault at drain");
    assert_eq!(svc.backlog(), 0, "drain left work behind");
    svc.report()
}

#[test]
fn telemetry_is_bit_identical_across_sim_threads() {
    let a = run_soak(7001, 36, 6, 1);
    let b = run_soak(7001, 36, 6, 4);
    // The raw event stream first (the most granular view), then the full
    // serialized exports — any engine-parallelism leak shows up here as a
    // one-byte diff.
    assert_eq!(a.events, b.events, "ServeEvent streams diverged");
    assert_eq!(a.to_json(), b.to_json(), "JSON reports diverged");
    assert_eq!(
        a.chrome_trace(),
        b.chrome_trace(),
        "unified Chrome traces diverged"
    );
}

#[test]
fn histograms_telescope_to_metrics_totals() {
    let r = run_soak(7002, 36, 6, 1);
    let m = r.metrics;
    // Conservation at the metrics layer.
    assert_eq!(
        m.submitted,
        m.admitted + m.rejected_overload + m.rejected_quota + m.rejected_shape
    );
    let terminal = m.completed + m.failed + m.deadline_exceeded + m.shed;
    assert_eq!(m.admitted, terminal, "drained service must balance");

    // The e2e histogram records exactly one sample per admitted job, so
    // its count — and its per-bucket sum — telescopes to the terminal
    // total, globally and across every breakdown.
    assert_eq!(r.global.e2e.count(), terminal);
    let bucket_sum: u64 = r.global.e2e.nonzero_buckets().iter().map(|b| b.2).sum();
    assert_eq!(bucket_sum, terminal, "bucket counts must telescope");
    let tenant_sum: u64 = r.per_tenant.values().map(|s| s.e2e.count()).sum();
    assert_eq!(tenant_sum, terminal);
    let shape_sum: u64 = r.per_shape.values().map(|s| s.e2e.count()).sum();
    assert_eq!(shape_sum, terminal);

    // Per-outcome histograms match the individual counters.
    let by_tag = |tag: &str| {
        r.per_outcome
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, h)| h.count())
            .unwrap_or(0)
    };
    assert_eq!(by_tag("done"), m.completed);
    assert_eq!(by_tag("failed"), m.failed);
    assert_eq!(by_tag("deadline_exceeded"), m.deadline_exceeded);
    assert_eq!(by_tag("shed"), m.shed);

    // Stage histograms are subsets of e2e: a job only has queue-wait (and
    // later stages) once it actually reached that stage.
    assert!(r.global.queue_wait.count() <= terminal);
    assert!(r.global.device_exec.count() <= m.completed);
    // One trail per terminal outcome, and a quiescent report has no
    // in-flight jobs.
    assert_eq!(r.trails.len() as u64, terminal);
    assert_eq!(r.in_flight, 0);
}

#[test]
fn a_request_full_path_joins_host_and_device() {
    let r = run_soak(7003, 36, 6, 1);
    // Pick a completed request that actually ran on device.
    let trail = r
        .trails
        .iter()
        .find(|t| t.outcome == OutcomeTag::Done && !t.grids.is_empty())
        .expect("soak must complete at least one job");
    let gref = trail.grids.last().expect("done job has a launch");

    // Host side: the launch event carries the same grid and stream.
    let launch = r
        .events
        .iter()
        .find(|e| matches!(&e.kind, ServeEventKind::Launch { grid, .. } if *grid == gref.grid))
        .expect("launch event for the trail's grid");
    if let ServeEventKind::Launch { stream, .. } = &launch.kind {
        assert_eq!(stream.0, gref.stream, "launch stream mismatch");
    }

    // Device side: the grid's kernel record exists, on the same stream,
    // launched at (or after) the host enqueue and retired before the job
    // completed.
    let rec = r
        .device_records()
        .find(|rec| rec.grid == gref.grid)
        .expect("kernel record for the trail's grid");
    assert_eq!(rec.stream, gref.stream);
    assert!(rec.launch_cycle >= gref.launch_cycle);
    assert!(rec.retire_cycle <= trail.complete_cycle);

    // And the stream-annotated device trace has its start/retire events.
    let mut started = false;
    let mut retired = false;
    for ev in r.device_events() {
        match ev.kind {
            TraceEventKind::KernelStart { grid, stream } if grid == gref.grid => {
                assert_eq!(stream, gref.stream);
                started = true;
            }
            TraceEventKind::KernelRetire { grid, stream } if grid == gref.grid => {
                assert_eq!(stream, gref.stream);
                retired = true;
            }
            _ => {}
        }
    }
    assert!(started && retired, "device trace must cover the grid");

    // The causal slice for this trail includes those device events.
    let causal = r.causal_device_events(trail);
    assert!(causal
        .iter()
        .any(|e| matches!(e.kind, TraceEventKind::KernelRetire { grid, .. } if grid == gref.grid)));
}

#[test]
fn report_json_parses_and_chrome_trace_is_well_formed() {
    let r = run_soak(7004, 24, 6, 1);
    let doc = Json::parse(&r.to_json()).expect("report JSON must parse");
    let metrics = doc.get("metrics").expect("metrics key");
    assert_eq!(
        metrics.get("completed").and_then(Json::as_u64),
        Some(r.metrics.completed)
    );
    assert!(doc.get("latency").and_then(|l| l.get("global")).is_some());
    let events = doc.get("events").and_then(Json::as_arr).expect("events");
    assert_eq!(events.len(), r.events.len());

    let trace = Json::parse(&r.chrome_trace()).expect("chrome trace must parse");
    let tev = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    // Every event has the mandatory keys; the unified timeline has host
    // (pid 0) and device (pid 1) rows.
    let mut pids = std::collections::BTreeSet::new();
    for e in tev {
        assert!(e.get("name").is_some() && e.get("ph").is_some());
        pids.insert(e.get("pid").and_then(Json::as_u64).expect("pid"));
    }
    assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    // The faulted soak renders at least one job slice, one batch slice,
    // one kernel slice, and one fault instant.
    let names: Vec<String> = tev
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str).map(String::from))
        .collect();
    assert!(names.iter().any(|n| n.starts_with("job ")));
    assert!(names.iter().any(|n| n.starts_with("batch ")));
    assert!(names.iter().any(|n| n.contains('#')), "kernel slices");
    assert!(
        names.iter().any(|n| n.starts_with("stream reset")),
        "the dropped reply must surface a stream reset instant"
    );
}
