//! Cross-crate behavioural tests: the simulator's microarchitectural knobs
//! must move the genomics workloads in the directions the paper reports.

use ggpu_core::{benchmark, GpuConfig, Scale};
use ggpu_icnt::Topology;
use ggpu_mem::DramScheduler;

fn cfg() -> GpuConfig {
    GpuConfig {
        n_sms: 8,
        ..GpuConfig::test_small()
    }
}

#[test]
fn mesh_is_not_faster_than_crossbar() {
    // Figure 20: other topologies perform at or below the local crossbar.
    let b = benchmark(Scale::Tiny, "GL").expect("GL exists");
    let xbar = b.run(&cfg(), false);
    let mut mesh_cfg = cfg();
    mesh_cfg.icnt.topology = Topology::Mesh;
    let mesh = b.run(&mesh_cfg, false);
    assert!(xbar.verified && mesh.verified);
    assert!(
        mesh.kernel_cycles >= xbar.kernel_cycles,
        "mesh {} vs xbar {}",
        mesh.kernel_cycles,
        xbar.kernel_cycles
    );
}

#[test]
fn router_latency_hurts_mesh() {
    // Figure 21: adding router pipeline delay degrades performance.
    let b = benchmark(Scale::Tiny, "NvB").expect("NvB exists");
    let mut base = cfg();
    base.icnt.topology = Topology::Mesh;
    let mut slow = base.clone();
    slow.icnt.router_delay = 16;
    let r0 = b.run(&base, false);
    let r16 = b.run(&slow, false);
    assert!(r0.verified && r16.verified);
    assert!(
        r16.kernel_cycles > r0.kernel_cycles,
        "+16 cycle routers must cost time ({} vs {})",
        r16.kernel_cycles,
        r0.kernel_cycles
    );
}

#[test]
fn narrow_flits_hurt_bandwidth() {
    // Figure 22: 8-byte flits are drastically slower than 40-byte flits.
    let b = benchmark(Scale::Tiny, "NvB").expect("NvB exists");
    let mut wide = cfg();
    wide.icnt.topology = Topology::Mesh;
    let mut narrow = wide.clone();
    narrow.icnt.flit_bytes = 8;
    let rw = b.run(&wide, false);
    let rn = b.run(&narrow, false);
    assert!(rw.verified && rn.verified);
    assert!(
        rn.kernel_cycles > rw.kernel_cycles,
        "8B flits must be slower ({} vs {})",
        rn.kernel_cycles,
        rw.kernel_cycles
    );
}

#[test]
fn fifo_controller_not_faster_than_frfcfs() {
    // Figure 16: FIFO shows slowdowns of up to ~15%, never speedups.
    let b = benchmark(Scale::Tiny, "GL").expect("GL exists");
    let fr = b.run(&cfg(), false);
    let mut fifo_cfg = cfg();
    fifo_cfg.dram.scheduler = DramScheduler::Fifo;
    let fifo = b.run(&fifo_cfg, false);
    assert!(fr.verified && fifo.verified);
    assert!(fifo.kernel_cycles as f64 >= fr.kernel_cycles as f64 * 0.99);
}

#[test]
fn perfect_memory_never_slower() {
    // Figure 15's premise.
    for abbrev in ["SW", "GKSW", "NvB"] {
        let b = benchmark(Scale::Tiny, abbrev).expect("exists");
        let real = b.run(&cfg(), false);
        let mut pcfg = cfg();
        pcfg.sm.perfect_memory = true;
        let perfect = b.run(&pcfg, false);
        assert!(real.verified && perfect.verified);
        assert!(
            perfect.kernel_cycles <= real.kernel_cycles,
            "{abbrev}: perfect {} vs real {}",
            perfect.kernel_cycles,
            real.kernel_cycles
        );
    }
}

#[test]
fn disabling_l1_degrades_performance() {
    // Figure 12: "performance degrades when the cache size is very small".
    let b = benchmark(Scale::Tiny, "GKSW").expect("exists");
    let base = b.run(&cfg(), false);
    let no_l1 = b.run(&cfg().with_cache_sizes(0, 128 * 1024), false);
    assert!(base.verified && no_l1.verified);
    assert!(
        no_l1.kernel_cycles > base.kernel_cycles,
        "no-L1 {} should exceed baseline {}",
        no_l1.kernel_cycles,
        base.kernel_cycles
    );
}

#[test]
fn memory_space_mix_matches_paper() {
    // Figure 9's headline facts.
    use ggpu_isa::Space;
    let c = cfg();
    // GASAL2: local dominates.
    let gl = benchmark(Scale::Tiny, "GL").expect("GL").run(&c, false);
    assert!(gl.stats.sm.space_count(Space::Local) > gl.stats.sm.space_count(Space::Global));
    // NW and PairHMM: shared dominates.
    for name in ["NW", "PairHMM"] {
        let r = benchmark(Scale::Tiny, name).expect("exists").run(&c, false);
        let shared = r.stats.sm.space_count(Space::Shared);
        let others: u64 = [Space::Tex, Space::Local, Space::Global]
            .iter()
            .map(|&s| r.stats.sm.space_count(s))
            .sum();
        assert!(
            shared > others,
            "{name}: shared {shared} vs others {others}"
        );
    }
    // NvB touches the texture path.
    let nvb = benchmark(Scale::Tiny, "NvB").expect("NvB").run(&c, false);
    assert!(nvb.stats.sm.space_count(Space::Tex) > 0);
}

#[test]
fn integer_instructions_dominate() {
    // Figure 8: integer instructions exceed 60% for the DP kernels.
    use ggpu_isa::InstrClass;
    let r = benchmark(Scale::Tiny, "SW").expect("SW").run(&cfg(), false);
    let total: u64 = [
        InstrClass::Int,
        InstrClass::Fp,
        InstrClass::LdSt,
        InstrClass::Sfu,
        InstrClass::Ctrl,
    ]
    .iter()
    .map(|&c| r.stats.sm.class_count(c))
    .sum();
    let int_frac = r.stats.sm.class_count(InstrClass::Int) as f64 / total as f64;
    assert!(int_frac > 0.6, "int fraction {int_frac:.2}");
}
