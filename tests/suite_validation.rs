//! End-to-end validation: every benchmark of the suite, in both CDP and
//! non-CDP variants, must produce device results identical to the CPU
//! reference implementations.

use ggpu_core::{all_benchmarks, GpuConfig, Scale, BENCHMARKS};

fn test_config() -> GpuConfig {
    GpuConfig {
        n_sms: 8,
        ..GpuConfig::test_small()
    }
}

#[test]
fn all_benchmarks_validate_without_cdp() {
    let config = test_config();
    for b in all_benchmarks(Scale::Tiny) {
        let r = b.run(&config, false);
        assert!(r.verified, "{} failed: {}", b.abbrev(), r.detail);
        assert!(r.stats.sm.issued > 0, "{} issued nothing", b.abbrev());
        assert!(r.kernel_cycles > 0, "{} took no time", b.abbrev());
    }
}

#[test]
fn all_benchmarks_validate_with_cdp() {
    let config = test_config();
    for b in all_benchmarks(Scale::Tiny) {
        let r = b.run(&config, true);
        assert!(r.verified, "{}-CDP failed: {}", b.abbrev(), r.detail);
        assert!(
            r.stats.sm.device_launches > 0,
            "{}-CDP never launched a child grid",
            b.abbrev()
        );
    }
}

#[test]
fn registry_matches_table3_order() {
    let names: Vec<&str> = all_benchmarks(Scale::Tiny)
        .iter()
        .map(|b| b.abbrev())
        .collect();
    assert_eq!(names, BENCHMARKS);
}

#[test]
fn runs_are_deterministic() {
    // Two runs of the same benchmark under the same config must produce
    // identical cycle counts — the simulator is fully deterministic, which
    // is what makes the paper's figures reproducible.
    let config = test_config();
    let b = ggpu_core::benchmark(Scale::Tiny, "GL").expect("GL exists");
    let r1 = b.run(&config, false);
    let r2 = b.run(&config, false);
    assert_eq!(r1.kernel_cycles, r2.kernel_cycles);
    assert_eq!(r1.stats.sm.issued, r2.stats.sm.issued);
    assert_eq!(r1.stats.l1.accesses(), r2.stats.l1.accesses());
}

#[test]
fn benchmarks_respond_to_memory_latency() {
    // A sanity check on the timing model: making DRAM dramatically slower
    // must not speed anything up.
    let base = test_config();
    let mut slow = test_config();
    slow.dram.t_cl = 200;
    slow.dram.t_rcd = 200;
    slow.dram.t_rp = 200;
    let b = ggpu_core::benchmark(Scale::Tiny, "NvB").expect("NvB exists");
    let fast = b.run(&base, false);
    let slowr = b.run(&slow, false);
    assert!(fast.verified && slowr.verified);
    assert!(
        slowr.kernel_cycles > fast.kernel_cycles,
        "slower DRAM must cost cycles ({} vs {})",
        slowr.kernel_cycles,
        fast.kernel_cycles
    );
}
