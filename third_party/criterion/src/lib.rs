//! Minimal offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched; this stand-in (wired in through `[patch.crates-io]`)
//! keeps the workspace's `[[bench]]` targets compiling and gives them
//! smoke-test semantics: each registered benchmark body runs a handful of
//! iterations and reports a coarse wall-clock time, with none of
//! criterion's statistics, plotting or comparison machinery.

use std::fmt;
use std::time::Instant;

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    iters: u32,
    last_nanos: u128,
}

impl Bencher {
    /// Run `f` for the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.last_nanos = t0.elapsed().as_nanos();
    }
}

/// Throughput annotation (recorded, then ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant.
    BytesDecimal(u64),
}

/// Identifier for one parameterized benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count (clamped to a smoke-test size).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.min(3) as u32;
        self
    }

    /// Record the work per iteration (ignored by the stand-in).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Register and immediately smoke-run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.criterion.sample_size,
            last_nanos: 0,
        };
        f(&mut b);
        eprintln!(
            "bench {}/{}: {} iters in {} ns",
            self.name, id, b.iters, b.last_nanos
        );
        self
    }

    /// Register a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.criterion.sample_size,
            last_nanos: 0,
        };
        f(&mut b, input);
        eprintln!(
            "bench {}/{}: {} iters in {} ns",
            self.name, id, b.iters, b.last_nanos
        );
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Benchmark registry/driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 1 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Register and smoke-run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }

    /// Process CLI arguments (no-op in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Opaque-value hint, re-exported like upstream.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.throughput(Throughput::Elements(4));
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("two", 7), &3u32, |b, &x| {
                b.iter(|| ran += x)
            });
            g.finish();
        }
        assert!(ran > 0);
    }
}
