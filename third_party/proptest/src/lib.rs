//! Minimal offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched; this crate (wired in through `[patch.crates-io]`)
//! implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! integer-range and tuple strategies, `prop::collection::vec`,
//! [`prelude::ProptestConfig`], and the `proptest!`, `prop_oneof!`,
//! `prop_assert*!` and `prop_assume!` macros.
//!
//! Semantics are generation-only: each test runs `cases` random inputs
//! (deterministically seeded from the test name) and panics on the first
//! failing case. There is no shrinking — a failure reports the panic from
//! the offending case directly.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    //! Deterministic generator + case-level control flow.

    /// SplitMix64 stream used to drive all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic stream derived from a label (the test name).
        pub fn deterministic(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi]` as i128 (covers every integer type).
        pub fn uniform_i128(&mut self, lo: i128, hi: i128) -> i128 {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u128 + 1;
            lo + (self.next_u64() as u128 % span) as i128
        }
    }

    /// Why a generated case did not run to completion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; draw a fresh case.
        Reject,
    }
}

use test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| f(inner.generate(rng)))
    }

    /// Build a recursive strategy: `recurse` lifts a strategy for the
    /// element type into a strategy for one more level of nesting, applied
    /// up to `depth` times over the base (leaf) strategy.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        strat
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        BoxedStrategy::from_fn(move |rng| inner.generate(rng))
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Arc::clone(&self.gen_fn),
        }
    }
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            gen_fn: Arc::new(f),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; each draw picks one arm uniformly.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.uniform_i128(0, self.arms.len() as i128 - 1) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.uniform_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.uniform_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    }
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod prop {
    //! `prop::` namespace mirrored from upstream.

    pub mod collection {
        //! Collection strategies.

        use super::super::{BoxedStrategy, Strategy};
        use std::ops::{Range, RangeInclusive};

        /// Length specification for [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty vec size range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// `Vec` strategy: length drawn from `size`, elements from
        /// `element`.
        pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
        where
            S: Strategy + 'static,
        {
            let size = size.into();
            let base = element.boxed();
            BoxedStrategy::from_fn(move |rng| {
                let len = rng.uniform_i128(size.lo as i128, size.hi as i128) as usize;
                (0..len).map(|_| base.generate(rng)).collect()
            })
        }
    }
}

/// Per-test runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
            max_shrink_iters: 0,
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.

    pub use crate::prop;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                let (($($pat,)+),) = (($($crate::Strategy::generate(&($strat), &mut rng),)+),);
                #[allow(clippy::redundant_closure_call)]
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "{}: gave up after {} prop_assume! rejections",
                                stringify!($name),
                                rejected
                            );
                        }
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Choose uniformly between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Reject the current case (counts against `max_global_rejects`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..4, 1..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_bounded(x in 3u8..17, y in 5usize..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in small_vec()) {
            prop_assert!((1..10).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u32..5, 0u32..5)) {
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0u8..8).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                inner
                    .clone()
                    .prop_map(|t| Tree::Node(Box::new(t.clone()), Box::new(t))),
                inner,
            ]
        });
        let mut rng = TestRng::deterministic("trees");
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5);
        }
    }
}
