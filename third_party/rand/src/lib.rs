//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment for this workspace has no network access and no
//! registry cache, so the real `rand` cannot be fetched. This crate
//! implements exactly the surface the workspace uses — `RngCore`, `Rng`
//! (`gen`, `gen_range`, `gen_bool`, `fill_bytes`), `SeedableRng` and
//! `rngs::StdRng` — on top of the SplitMix64/xoshiro256** generators.
//! It is wired in through `[patch.crates-io]` in the workspace manifest.
//!
//! Determinism: a given seed always produces the same stream, which is all
//! the test-suite relies on (every test compares two computations over the
//! same generated data rather than against golden values from upstream
//! `rand`).

/// Low-level generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform value in `[lo, hi]` (inclusive).
    fn uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// `self + 1` saturating, used to turn exclusive bounds inclusive.
    fn minus_one(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Modulo bias is ~2^-64 per draw; irrelevant for test workloads.
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
            fn minus_one(self) -> Self {
                self - 1
            }
        }
    )*}
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type of the range.
    type Output;
    /// Draw a uniform element.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: UniformInt> SampleRange for core::ops::Range<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::uniform_inclusive(rng, self.start, self.end.minus_one())
    }
}

impl<T: UniformInt> SampleRange for core::ops::RangeInclusive<T> {
    type Output = T;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::uniform_inclusive(rng, lo, hi)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draw a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw a uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::draw(self) < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;

    /// Build a generator from OS entropy. The stand-in has no entropy
    /// source; this derives a seed from the monotonic address of a local,
    /// which is stable enough for the non-reproducible call sites.
    fn from_entropy() -> Self {
        let marker = 0u8;
        Self::seed_from_u64(&marker as *const u8 as u64 ^ 0x9e37_79b9_7f4a_7c15)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the standard small, fast,
    /// high-quality generator pairing.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by code written against `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// A fresh generator seeded from (approximate) entropy.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u8..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let s = rng.gen_range(-4i32..5);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        // Mean of 1000 uniforms should be near 0.5.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
